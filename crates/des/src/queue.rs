//! Time-ordered event queue with stable FIFO tie-breaking.
//!
//! # Hot-path layout
//!
//! The queue is the innermost data structure of every simulation loop, so it
//! is built for throughput without ever weakening the ordering contract:
//! events pop in ascending `(time, key, seq)` order, exactly as a totally
//! ordered sequential queue would produce.
//!
//! Three pieces cooperate:
//!
//! * **Packed stamps.** Each pending event carries a `u128` stamp
//!   `(time << 64) | key`. Both halves use the full 64 bits, so the packing
//!   is *bijective* with `(time, key)` — no overflow case exists and the
//!   lexicographic `(time, key)` order is exactly the integer order of the
//!   stamps. The third ordering field, the insertion sequence number, lives
//!   in the payload slab and is consulted only when two stamps compare
//!   equal (same instant *and* same key — rare by construction, since most
//!   callers derive unique keys). Sift steps therefore cost a single
//!   `u128` compare in the common case.
//! * **4-ary implicit heap over structure-of-arrays.** The "far" heap keeps
//!   stamps in one flat `Vec<u128>` and 32-bit slab slots in a parallel
//!   `Vec<u32>`; payloads sit in a slab indexed by slot and never move
//!   during sifts. A 4-ary layout halves the tree depth of a binary heap
//!   and keeps the four children of a node in at most two cache lines of
//!   stamps.
//! * **Bucketed near-future calendar.** Once the queue is deep enough
//!   (`ARM_DEPTH` events), a ring of `N_BUCKETS` fixed-width time buckets
//!   fronts the heap: a push whose time lands inside the ring is an O(1)
//!   append to its bucket; only pushes beyond the ring's horizon fall
//!   through to the heap. The earliest nonempty bucket is kept *activated*
//!   — sorted descending so pops take from its back in O(1). Bucket width
//!   is chosen from the observed spread of pending events when the
//!   calendar arms; the policy is a pure performance knob, because …
//!
//! … correctness never depends on where an event is stored: `pop` compares
//! the activated bucket's head against the far heap's root (with the slab
//! sequence number breaking exact stamp ties) and takes the smaller, so
//! the two-structure split is invisible to callers. Buckets hold disjoint
//! time ranges, which is why only the earliest nonempty bucket can hold
//! the calendar's minimum.
//!
//! The queue also caches its front `(stamp, slot)`: mutations refresh the
//! cache (pushes with a cheap compare, pops with one O(1) recompute), so
//! the windowed cluster drivers — which peek many queues per event they
//! actually pop — pay a single field read per probe. Finally,
//! [`EventQueue::pop_push`] fuses the ubiquitous
//! handle-an-event-then-schedule-its-successor cycle into a replace-top:
//! the popped slab slot is reused for the new payload and one sift-down
//! replaces the pop's sift-down + the push's sift-up.

use crate::time::SimTime;

/// Queue depth at which the calendar front-end arms itself. Below this the
/// heap alone is at most a couple of levels deep and the calendar
/// bookkeeping would cost more than it saves.
const ARM_DEPTH: usize = 8;

/// Number of calendar buckets (power of two; the ring index is a mask).
const N_BUCKETS: usize = 64;

const BUCKET_MASK: u64 = N_BUCKETS as u64 - 1;

/// Calendar bucket width bounds, as log2 nanoseconds: 64 ns … ~67 ms.
const MIN_WIDTH_LOG2: u32 = 6;
const MAX_WIDTH_LOG2: u32 = 26;

/// Sentinel terminating the slab's intrusive free list.
const NO_SLOT: u32 = u32::MAX;

/// Packs an event stamp: `time` in the high 64 bits, `key` in the low 64.
///
/// The packing is bijective — every `(time, key)` pair has exactly one
/// stamp and vice versa — so comparing stamps as integers *is* comparing
/// `(time, key)` lexicographically. This is the same stamp order the
/// windowed cluster drivers use for their synchronization bounds, exposed
/// so coordinator mailboxes can pre-pack once instead of re-comparing two
/// fields per merge step.
#[inline]
#[must_use]
pub fn pack_stamp(time: SimTime, key: u64) -> u128 {
    (u128::from(time.as_nanos()) << 64) | u128::from(key)
}

/// Recovers the `time` half of a [`pack_stamp`]ed stamp — what a mailbox
/// that stores pre-packed stamps uses to timestamp a command when it
/// finally executes.
#[inline]
#[must_use]
pub fn unpack_time(stamp: u128) -> SimTime {
    SimTime::from_nanos((stamp >> 64) as u64)
}

#[inline]
fn stamp_time(stamp: u128) -> SimTime {
    unpack_time(stamp)
}

#[inline]
fn stamp_key(stamp: u128) -> u64 {
    stamp as u64
}

/// Hole-pattern sift-up: the element at `i` rides in registers, parents
/// shift down one write each, and the element lands with a single store.
/// In the dominant push pattern (scheduling later than everything pending)
/// the first compare fails and this is one load + one branch.
fn sift_up<E>(stamp: &mut [u128], slot: &mut [u32], slab: &[(u64, Option<E>)], mut i: usize) {
    let s = stamp[i];
    let sl = slot[i];
    while i > 0 {
        let parent = (i - 1) / 4;
        let ps = stamp[parent];
        if s < ps || (s == ps && slab[sl as usize].0 < slab[slot[parent] as usize].0) {
            stamp[i] = ps;
            slot[i] = slot[parent];
            i = parent;
        } else {
            break;
        }
    }
    stamp[i] = s;
    slot[i] = sl;
}

/// Hole-pattern sift-down: the element at `i` rides in registers while the
/// smallest child of each level shifts up (one write per level instead of
/// a three-store swap), then lands with a single store. Child stamps are
/// compared directly; the slab sequence number is consulted only on exact
/// stamp ties.
fn sift_down<E>(stamp: &mut [u128], slot: &mut [u32], slab: &[(u64, Option<E>)], mut i: usize) {
    let len = stamp.len();
    let s = stamp[i];
    let sl = slot[i];
    loop {
        let first = 4 * i + 1;
        if first >= len {
            break;
        }
        let mut min = first;
        let mut min_s = stamp[first];
        for c in first + 1..(first + 4).min(len) {
            let cs = stamp[c];
            if cs < min_s || (cs == min_s && slab[slot[c] as usize].0 < slab[slot[min] as usize].0)
            {
                min = c;
                min_s = cs;
            }
        }
        if min_s < s || (min_s == s && slab[slot[min] as usize].0 < slab[sl as usize].0) {
            stamp[i] = min_s;
            slot[i] = slot[min];
            i = min;
        } else {
            break;
        }
    }
    stamp[i] = s;
    slot[i] = sl;
}

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in the order they were pushed (or, with
/// [`push_keyed`](Self::push_keyed), in ascending key order). This
/// determinism is what makes whole-server simulations reproducible
/// bit-for-bit. See the module docs for the packed-stamp hybrid
/// layout behind the API.
///
/// # Examples
///
/// ```
/// use des_engine::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(30), "late");
/// q.push(SimTime::from_nanos(10), "first");
/// q.push(SimTime::from_nanos(10), "second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Far-heap packed stamps: implicit 4-ary min-heap, structure-of-arrays.
    far_stamp: Vec<u128>,
    /// Slab slot of each far-heap entry, parallel to `far_stamp`.
    far_slot: Vec<u32>,
    /// Slab: `(sequence number, payload)` addressed by slot; payloads are
    /// never moved by sifts. Free slots thread an intrusive free list
    /// through the sequence field (the payload is `None`), so allocation
    /// and release touch no other structure.
    slab: Vec<(u64, Option<E>)>,
    /// Head of the intrusive free list ([`NO_SLOT`] when empty).
    free_head: u32,
    /// Calendar armed: pushes route through the bucket ring.
    armed: bool,
    /// Bucket width, as log2 nanoseconds.
    width_log2: u32,
    /// Absolute bucket number of the activated (earliest) bucket.
    cur_bucket: u64,
    /// Bucket ring, indexed by absolute bucket number & `BUCKET_MASK`.
    /// Buckets hold unsorted `(stamp, slot)` pairs. Allocated on arming.
    ring: Vec<Vec<(u128, u32)>>,
    /// Occupancy bitmask over `ring` (bit *i* set ⇔ `ring[i]` nonempty),
    /// so activating the next bucket is a rotate + trailing-zero count
    /// instead of a linear scan over mostly-empty buckets.
    ring_occ: u64,
    /// Total entries across the ring (excluding `active`).
    ring_count: usize,
    /// The activated bucket, sorted descending by `(stamp, seq)` so the
    /// earliest entry pops from the back in O(1).
    active: Vec<(u128, u32)>,
    /// Cached front: the minimum `(stamp, slot)` over the active bucket
    /// and the far heap, plus whether it sits in the far heap. Recomputed
    /// once per mutation so the peek-heavy windowed drivers (which probe
    /// many queues per pop) read a single field.
    front: Option<(u128, u32, bool)>,
    /// Total pending events across heap, ring and active bucket.
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            far_stamp: Vec::with_capacity(capacity),
            far_slot: Vec::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free_head: NO_SLOT,
            armed: false,
            width_log2: MIN_WIDTH_LOG2,
            cur_bucket: 0,
            ring: Vec::new(),
            ring_occ: 0,
            ring_count: 0,
            active: Vec::new(),
            front: None,
            len: 0,
            next_seq: 0,
        }
    }

    /// Events the heap and payload slab can hold before reallocating — the
    /// observable the pre-sizing tests assert against (a queue whose peak
    /// population stays at or below its initial capacity never grows).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.far_stamp
            .capacity()
            .min(self.far_slot.capacity())
            .min(self.slab.capacity())
    }

    fn alloc_slot(&mut self, seq: u64, payload: E) -> u32 {
        let slot = self.free_head;
        if slot == NO_SLOT {
            let slot = u32::try_from(self.slab.len()).expect("slab outgrew u32 slots");
            assert!(slot != NO_SLOT, "slab outgrew u32 slots");
            self.slab.push((seq, Some(payload)));
            slot
        } else {
            let entry = &mut self.slab[slot as usize];
            self.free_head = entry.0 as u32;
            *entry = (seq, Some(payload));
            slot
        }
    }

    fn free_slot(&mut self, slot: u32) -> E {
        let entry = &mut self.slab[slot as usize];
        let payload = entry.1.take().expect("popped slot holds a payload");
        entry.0 = u64::from(self.free_head);
        self.free_head = slot;
        payload
    }

    fn far_push(&mut self, stamp: u128, slot: u32) {
        self.far_stamp.push(stamp);
        self.far_slot.push(slot);
        let i = self.far_stamp.len() - 1;
        sift_up(&mut self.far_stamp, &mut self.far_slot, &self.slab, i);
    }

    /// Removes and returns the far heap's minimum: the root, refilled by
    /// moving the last entry up and sifting it down.
    fn far_pop(&mut self) -> (u128, u32) {
        let last_stamp = self.far_stamp.pop().expect("far heap is nonempty");
        let last_slot = self.far_slot.pop().expect("far heap is nonempty");
        if self.far_stamp.is_empty() {
            return (last_stamp, last_slot);
        }
        let stamp = self.far_stamp[0];
        let slot = self.far_slot[0];
        self.far_stamp[0] = last_stamp;
        self.far_slot[0] = last_slot;
        sift_down(&mut self.far_stamp, &mut self.far_slot, &self.slab, 0);
        (stamp, slot)
    }

    /// Sizes the calendar from the observed spread of pending events (all
    /// of which sit in the far heap when this runs): bucket width ≈ twice
    /// the mean inter-event gap, clamped, rounded to a power of two.
    fn arm(&mut self) {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for &s in &self.far_stamp {
            let t = (s >> 64) as u64;
            min = min.min(t);
            max = max.max(t);
        }
        if min > max {
            (min, max) = (0, 0);
        }
        let per = ((max - min) / self.len.max(1) as u64).max(1);
        let width = per.saturating_mul(2).next_power_of_two();
        self.width_log2 = width.trailing_zeros().clamp(MIN_WIDTH_LOG2, MAX_WIDTH_LOG2);
        self.cur_bucket = min >> self.width_log2;
        if self.ring.is_empty() {
            self.ring = (0..N_BUCKETS).map(|_| Vec::new()).collect();
        }
        self.armed = true;
    }

    /// Routes an armed-calendar push: O(1) ring append inside the horizon,
    /// sorted insert into the activated bucket for the (rare) past band,
    /// far heap beyond the horizon. Maintains the front cache: only the
    /// active-bucket branches can produce a new minimum — a ring or far
    /// entry lands in a strictly later bucket than every active entry, so
    /// it can never undercut the current front.
    fn calendar_push(&mut self, t_ns: u64, stamp: u128, slot: u32) {
        let b = t_ns >> self.width_log2;
        if self.active.is_empty() && self.ring_count == 0 {
            // Empty calendar: slide the window to wherever time has moved.
            self.cur_bucket = b;
            self.active.push((stamp, slot));
            self.push_updates_front(stamp, slot, false);
            return;
        }
        if b <= self.cur_bucket {
            // Descending order, and this push holds the largest sequence
            // number, so it sorts *before* any equal-stamp entry: position
            // by stamp alone.
            let pos = self.active.partition_point(|&(s, _)| s > stamp);
            self.active.insert(pos, (stamp, slot));
            self.push_updates_front(stamp, slot, false);
        } else if b - self.cur_bucket < N_BUCKETS as u64 {
            let idx = (b & BUCKET_MASK) as usize;
            self.ring[idx].push((stamp, slot));
            self.ring_occ |= 1 << idx;
            self.ring_count += 1;
        } else {
            self.far_push(stamp, slot);
        }
    }

    /// Activates the earliest nonempty ring bucket: swap it into `active`
    /// (buffer capacities rotate, no allocation in steady state) and sort
    /// descending. Buckets cover disjoint time ranges, so the earliest
    /// nonempty one holds the calendar's minimum.
    fn advance_calendar(&mut self) {
        debug_assert!(self.active.is_empty() && self.ring_count > 0);
        debug_assert!(
            self.ring_occ != 0,
            "ring_count > 0 but every bucket is empty"
        );
        // Ring entries live in buckets `cur_bucket + 1 ..= cur_bucket + 63`,
        // so rotating the occupancy mask right puts the nearest future
        // bucket at bit 0 and a trailing-zero count finds it.
        let shift = ((self.cur_bucket + 1) & BUCKET_MASK) as u32;
        let i = 1 + u64::from(self.ring_occ.rotate_right(shift).trailing_zeros());
        let idx = ((self.cur_bucket + i) & BUCKET_MASK) as usize;
        self.cur_bucket += i;
        std::mem::swap(&mut self.active, &mut self.ring[idx]);
        self.ring_occ &= !(1 << idx);
        self.ring_count -= self.active.len();
        let slab = &self.slab;
        self.active.sort_unstable_by(|a, b| {
            b.0.cmp(&a.0)
                .then_with(|| slab[b.1 as usize].0.cmp(&slab[a.1 as usize].0))
        });
    }

    /// Recomputes the cached front after a structural change: activate the
    /// next calendar bucket if needed, then take the smaller of the active
    /// bucket's head and the far heap's root (exact stamp ties broken by
    /// slab sequence number).
    fn refresh_front(&mut self) {
        if self.active.is_empty() && self.ring_count > 0 {
            self.advance_calendar();
        }
        let far = self.far_stamp.first().map(|&s| (s, self.far_slot[0]));
        self.front = match (self.active.last().copied(), far) {
            (Some((sa, aslot)), Some((sf, fslot))) => {
                let far_first = sf < sa
                    || (sf == sa && self.slab[fslot as usize].0 < self.slab[aslot as usize].0);
                Some(if far_first {
                    (sf, fslot, true)
                } else {
                    (sa, aslot, false)
                })
            }
            (Some((sa, aslot)), None) => Some((sa, aslot, false)),
            (None, Some((sf, fslot))) => Some((sf, fslot, true)),
            (None, None) => None,
        };
    }

    /// O(1) front-cache update for a push: the new entry takes the front
    /// exactly when its stamp is strictly smaller (an equal stamp loses on
    /// the sequence number, which grows monotonically).
    #[inline]
    fn push_updates_front(&mut self, stamp: u128, slot: u32, in_far: bool) {
        match self.front {
            Some((s, _, _)) if stamp >= s => {}
            _ => self.front = Some((stamp, slot, in_far)),
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.push_keyed(time, seq, payload);
    }

    /// Schedules `payload` to fire at `time`, breaking same-instant ties by
    /// `key` (ascending) before insertion order.
    ///
    /// Mixing keyed and unkeyed pushes in one queue is well-defined (plain
    /// pushes use their sequence number as the key) but rarely what you
    /// want, since sequence numbers grow past explicit keys.
    pub fn push_keyed(&mut self, time: SimTime, key: u64, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(seq, payload);
        let stamp = pack_stamp(time, key);
        self.len += 1;
        if !self.armed {
            if self.len < ARM_DEPTH {
                self.far_push(stamp, slot);
                self.push_updates_front(stamp, slot, true);
                return;
            }
            self.arm();
        }
        self.calendar_push(time.as_nanos(), stamp, slot);
    }

    /// Bulk-schedules `items` (`(time, key, payload)` triples), bypassing
    /// the calendar: entries are appended to the far heap and heapified in
    /// one pass when that is cheaper than sifting each. The preload
    /// pattern — filling a whole trace before the first pop — becomes
    /// O(n) instead of O(n log n).
    pub fn push_batch<I: IntoIterator<Item = (SimTime, u64, E)>>(&mut self, items: I) {
        let start = self.far_stamp.len();
        for (time, key, payload) in items {
            let seq = self.next_seq;
            self.next_seq += 1;
            let slot = self.alloc_slot(seq, payload);
            self.far_stamp.push(pack_stamp(time, key));
            self.far_slot.push(slot);
            self.len += 1;
        }
        let end = self.far_stamp.len();
        if end == start {
            return;
        }
        if end - start > start {
            // The batch dominates: Floyd heapify the whole array.
            if end > 1 {
                for i in (0..=(end - 2) / 4).rev() {
                    sift_down(&mut self.far_stamp, &mut self.far_slot, &self.slab, i);
                }
            }
        } else {
            for i in start..end {
                sift_up(&mut self.far_stamp, &mut self.far_slot, &self.slab, i);
            }
        }
        self.refresh_front();
    }

    /// Removes and returns the earliest event, or `None` if empty.
    ///
    /// The cached front *is* the element to remove: when it sits in the far
    /// heap it is the heap minimum (so the far-heap pop retrieves
    /// exactly it), and when it sits in the active bucket it is the back of
    /// the descending-sorted vector.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (stamp, slot, in_far) = self.front?;
        if in_far {
            let popped = self.far_pop();
            debug_assert_eq!(popped, (stamp, slot));
        } else {
            let popped = self.active.pop();
            debug_assert_eq!(popped, Some((stamp, slot)));
        }
        self.len -= 1;
        let payload = self.free_slot(slot);
        self.refresh_front();
        Some((stamp_time(stamp), payload))
    }

    /// Pops the earliest event, then schedules `payload` at `(time, key)` —
    /// the fused replace-top for the ubiquitous handle-then-reschedule
    /// cycle. Exactly equivalent to [`pop`](Self::pop) followed by
    /// [`push_keyed`](Self::push_keyed) (the new event is *not* a
    /// candidate for the pop, even if earlier), but while the calendar is
    /// unarmed the popped root's slab slot is reused for the new payload —
    /// no free-list traffic — and one sift-down from the root replaces the
    /// pop's sift-down + the push's sift-up.
    pub fn pop_push(&mut self, time: SimTime, key: u64, payload: E) -> Option<(SimTime, E)> {
        if self.armed || self.far_stamp.is_empty() {
            let popped = self.pop();
            self.push_keyed(time, key, payload);
            return popped;
        }
        // Unarmed: every pending event sits in the far heap, and the front
        // cache points at its root.
        debug_assert!(matches!(self.front, Some((_, _, true))));
        let stamp = self.far_stamp[0];
        let slot = self.far_slot[0];
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = &mut self.slab[slot as usize];
        let popped = entry
            .1
            .replace(payload)
            .expect("front slot holds a payload");
        entry.0 = seq;
        self.far_stamp[0] = pack_stamp(time, key);
        sift_down(&mut self.far_stamp, &mut self.far_slot, &self.slab, 0);
        self.front = Some((self.far_stamp[0], self.far_slot[0], true));
        Some((stamp_time(stamp), popped))
    }

    /// Schedules `payload` at `(time, key)`, then pops the earliest pending
    /// event — exactly equivalent to [`push_keyed`](Self::push_keyed)
    /// followed by [`pop`](Self::pop) (the new event **is** a candidate for
    /// the pop), fused. A new event that beats the front outright passes
    /// straight through without touching the heap: it holds the largest
    /// sequence number, so skipping its insertion leaves every remaining
    /// element's relative sequence order — and thus every future tie-break
    /// — unchanged.
    pub fn push_pop(&mut self, time: SimTime, key: u64, payload: E) -> (SimTime, E) {
        let stamp = pack_stamp(time, key);
        match self.front {
            Some((s, _, _)) if stamp >= s => {
                // The incumbent front wins the pop (an equal stamp beats
                // the new event on sequence number); what remains is
                // remove-front + insert-new — exactly the pop_push fusion.
                self.pop_push(time, key, payload)
                    .expect("front was nonempty")
            }
            _ => (time, payload),
        }
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.front.map(|(s, _, _)| stamp_time(s))
    }

    /// The `(time, key)` stamp of the earliest pending event, if any — the
    /// position a windowed driver compares against a synchronization bound
    /// without consuming the event.
    #[must_use]
    #[inline]
    pub fn peek_time_key(&self) -> Option<(SimTime, u64)> {
        self.front.map(|(s, _, _)| (stamp_time(s), stamp_key(s)))
    }

    /// The packed `(time << 64) | key` stamp of the earliest pending event,
    /// if any — [`peek_time_key`](Self::peek_time_key) as a single integer,
    /// comparable directly against [`pack_stamp`]ed bounds.
    #[must_use]
    #[inline]
    pub fn peek_stamp(&self) -> Option<u128> {
        self.front.map(|(s, _, _)| s)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// FIFO stability is preserved across clears).
    ///
    /// Every buffer — heap, slab, free list, calendar buckets — retains its
    /// capacity, so the fault-abort paths that clear and refill a timeline
    /// never reallocate. [`capacity`](Self::capacity) is unchanged by a
    /// clear, and the tests pin that.
    pub fn clear(&mut self) {
        self.far_stamp.clear();
        self.far_slot.clear();
        self.slab.clear();
        self.free_head = NO_SLOT;
        for bucket in &mut self.ring {
            bucket.clear();
        }
        self.ring_occ = 0;
        self.ring_count = 0;
        self.active.clear();
        self.front = None;
        self.len = 0;
        // `armed`/`width_log2`/`cur_bucket` are routing policy, not
        // contract: the next push re-slides the (empty) window.
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 1, 9, 3, 7] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_ties_pop_in_key_order_regardless_of_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for &k in &[7u64, 3, 9, 1, 5] {
            q.push_keyed(t, k, k);
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_keys_fall_back_to_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(10);
        q.push_keyed(t, 1, "a");
        q.push_keyed(t, 1, "b");
        q.push_keyed(t, 0, "c");
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, vec!["c", "a", "b"]);
    }

    #[test]
    fn time_still_dominates_keys() {
        let mut q = EventQueue::new();
        q.push_keyed(SimTime::from_nanos(20), 0, "later");
        q.push_keyed(SimTime::from_nanos(10), 99, "earlier");
        assert_eq!(q.pop().map(|(_, v)| v), Some("earlier"));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(8), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(8)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_stability_survives_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        q.push(SimTime::ZERO, 2);
        q.push(SimTime::ZERO, 3);
        assert_eq!(q.pop().map(|(_, v)| v), Some(2));
        assert_eq!(q.pop().map(|(_, v)| v), Some(3));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let q: EventQueue<u8> = EventQueue::with_capacity(64);
        assert!(q.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(format!("{q:?}").contains("EventQueue"));
    }

    #[test]
    fn stamp_packing_is_bijective_and_ordered() {
        let pairs = [
            (0u64, 0u64),
            (0, u64::MAX),
            (1, 0),
            (1, 1 << 63),
            (u64::MAX, u64::MAX),
        ];
        let mut stamps: Vec<u128> = pairs
            .iter()
            .map(|&(t, k)| pack_stamp(SimTime::from_nanos(t), k))
            .collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted, "lexicographic (time, key) == stamp order");
        stamps.dedup();
        assert_eq!(
            stamps.len(),
            pairs.len(),
            "distinct pairs map to distinct stamps"
        );
        for (&(t, k), &s) in pairs.iter().zip(&stamps) {
            assert_eq!(stamp_time(s), SimTime::from_nanos(t));
            assert_eq!(stamp_key(s), k);
        }
    }

    /// Deep interleaved push/pop so the calendar arms and all three
    /// structures (active bucket, ring, far heap) hold events at once.
    #[test]
    fn deep_queue_pops_in_exact_order() {
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, u64, u64)> = Vec::new(); // (time, key, seq)
                                                             // Deterministic scattered times: multiplicative hash over a range
                                                             // wide enough to arm the calendar and spill past its horizon.
                                                             // The push index doubles as the expected sequence number.
        for i in 0u64..3000 {
            let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
            let key = i % 7; // plenty of (time, key) collisions
            q.push_keyed(SimTime::from_nanos(t), key, i);
            expected.push((t, key, i));
            if i % 3 == 0 {
                if let Some((t_pop, s_pop)) = q.pop() {
                    let min = expected
                        .iter()
                        .copied()
                        .min_by_key(|&(t, k, s)| (t, k, s))
                        .unwrap();
                    assert_eq!((t_pop.as_nanos(), s_pop), (min.0, min.2));
                    expected.retain(|&(_, _, s)| s != min.2);
                }
            }
        }
        expected.sort_unstable();
        for &(t, _, s) in &expected {
            let (t_pop, s_pop) = q.pop().unwrap();
            assert_eq!((t_pop.as_nanos(), s_pop), (t, s));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_push_equals_pop_then_push() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for &t in &[40u64, 10, 30, 20] {
            a.push_keyed(SimTime::from_nanos(t), t, t);
            b.push_keyed(SimTime::from_nanos(t), t, t);
        }
        let fused = a.pop_push(SimTime::from_nanos(5), 5, 5);
        let popped = b.pop();
        b.push_keyed(SimTime::from_nanos(5), 5, 5);
        assert_eq!(fused, popped);
        // The new event was not eligible for the fused pop even though it
        // is the earliest; it must be the *next* pop.
        assert_eq!(a.pop().map(|(_, v)| v), Some(5));
        assert_eq!(b.pop().map(|(_, v)| v), Some(5));
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pop_push_on_empty_queue_still_pushes() {
        let mut q = EventQueue::new();
        assert_eq!(q.pop_push(SimTime::from_nanos(3), 0, "only"), None);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), "only")));
    }

    #[test]
    fn push_batch_merges_with_pushed_events() {
        let mut q = EventQueue::new();
        q.push_keyed(SimTime::from_nanos(15), 0, 15u64);
        q.push_batch((0..10u64).map(|i| (SimTime::from_nanos(i * 4), i, i * 4)));
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_nanos())).collect();
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
        assert_eq!(popped.len(), 11);
        assert!(popped.contains(&15));
    }

    #[test]
    fn push_batch_preload_pops_in_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push_batch(vec![
            (SimTime::from_nanos(7), 1, "b"),
            (SimTime::from_nanos(7), 1, "c"),
            (SimTime::from_nanos(7), 0, "a"),
            (SimTime::from_nanos(2), 9, "first"),
        ]);
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, vec!["first", "a", "b", "c"]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(256);
        let initial = q.capacity();
        assert!(initial >= 256);
        for i in 0..200u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        q.clear();
        assert_eq!(q.capacity(), initial, "clear must not shed capacity");
        assert!(q.is_empty());
        // Refill after clear stays within the retained buffers.
        for i in 0..200u64 {
            q.push(SimTime::from_nanos(i), i);
        }
        assert_eq!(q.capacity(), initial, "refill within capacity, no growth");
    }

    #[test]
    fn peek_stamp_matches_time_key() {
        let mut q = EventQueue::new();
        q.push_keyed(SimTime::from_nanos(100), 7, ());
        q.push_keyed(SimTime::from_nanos(50), 9, ());
        assert_eq!(q.peek_stamp(), Some(pack_stamp(SimTime::from_nanos(50), 9)));
        assert_eq!(q.peek_time_key(), Some((SimTime::from_nanos(50), 9)));
    }

    /// Back-to-back pops and peeks with no push in between must keep the
    /// cached front coherent.
    #[test]
    fn pops_and_peeks_interleave_coherently() {
        let mut q = EventQueue::new();
        for &t in &[9u64, 2, 7, 4, 8, 1, 6, 3, 5] {
            q.push(SimTime::from_nanos(t), t);
        }
        assert_eq!(q.pop().map(|(_, v)| v), Some(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        assert_eq!(q.pop().map(|(_, v)| v), Some(2));
        q.push(SimTime::from_nanos(0), 0); // fills the hole, becomes front
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        let rest: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(rest, vec![0, 3, 4, 5, 6, 7, 8, 9]);
    }

    /// Model-based check against a `BinaryHeap` reference: random
    /// interleavings of every queue operation must produce identical pop
    /// sequences, lengths, and front stamps. The oracle mirrors the
    /// sequence-number contract exactly — unkeyed pushes use `next_seq` as
    /// their key, `pop_push` always consumes one sequence number, and the
    /// `push_pop` passthrough (new event beats the front outright) consumes
    /// none — so any drift in tie-breaking shows up as a payload mismatch.
    #[test]
    fn matches_binary_heap_reference_on_random_workload() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Oracle entry: (packed stamp, insertion seq, payload id).
        type Entry = Reverse<(u128, u64, u32)>;
        let time_of = |stamp: u128| SimTime::from_nanos((stamp >> 64) as u64);

        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        for trial in 0..40 {
            let mut q: EventQueue<u32> = EventQueue::new();
            let mut oracle: BinaryHeap<Entry> = BinaryHeap::new();
            let mut seq: u64 = 0;
            let mut next_id: u32 = 0;
            // Narrow time/key ranges force stamp collisions; the occasional
            // wide jump forces calendar re-slides past the armed window.
            let rand_time = |r: u64| {
                let base = r % 1000;
                if r % 97 == 0 {
                    SimTime::from_nanos(base * 1_000_000_000)
                } else {
                    SimTime::from_nanos(base)
                }
            };
            for _ in 0..600 {
                let r = rng();
                let t = rand_time(rng());
                let k = rng() % 8;
                match r % 100 {
                    0..=24 => {
                        // push: the implementation keys it by next_seq.
                        oracle.push(Reverse((pack_stamp(t, seq), seq, next_id)));
                        seq += 1;
                        q.push(t, next_id);
                        next_id += 1;
                    }
                    25..=44 => {
                        oracle.push(Reverse((pack_stamp(t, k), seq, next_id)));
                        seq += 1;
                        q.push_keyed(t, k, next_id);
                        next_id += 1;
                    }
                    45..=64 => {
                        let want = oracle.pop().map(|Reverse((s, _, id))| (time_of(s), id));
                        assert_eq!(q.pop(), want, "pop diverged (trial {trial})");
                    }
                    65..=79 => {
                        let want = oracle.pop().map(|Reverse((s, _, id))| (time_of(s), id));
                        oracle.push(Reverse((pack_stamp(t, k), seq, next_id)));
                        seq += 1;
                        assert_eq!(q.pop_push(t, k, next_id), want, "pop_push diverged");
                        next_id += 1;
                    }
                    80..=89 => {
                        let stamp = pack_stamp(t, k);
                        let want = match oracle.peek() {
                            Some(&Reverse((s, _, _))) if stamp >= s => {
                                let Reverse((s, _, id)) = oracle.pop().expect("peeked nonempty");
                                oracle.push(Reverse((stamp, seq, next_id)));
                                seq += 1;
                                (time_of(s), id)
                            }
                            // Passthrough: no insertion, no seq consumed.
                            _ => (t, next_id),
                        };
                        assert_eq!(q.push_pop(t, k, next_id), want, "push_pop diverged");
                        next_id += 1;
                    }
                    90..=96 => {
                        let batch: Vec<(SimTime, u64, u32)> = (0..rng() % 12)
                            .map(|_| {
                                let (t, k) = (rand_time(rng()), rng() % 8);
                                let item = (t, k, next_id);
                                oracle.push(Reverse((pack_stamp(t, k), seq, next_id)));
                                seq += 1;
                                next_id += 1;
                                item
                            })
                            .collect();
                        q.push_batch(batch);
                    }
                    _ => {
                        // clear: drops events, keeps the seq counter running.
                        oracle.clear();
                        q.clear();
                    }
                }
                assert_eq!(q.len(), oracle.len(), "len diverged (trial {trial})");
                assert_eq!(
                    q.peek_stamp(),
                    oracle.peek().map(|&Reverse((s, _, _))| s),
                    "front stamp diverged (trial {trial})"
                );
            }
            // Drain both completely: the full pop order must match.
            while let Some(Reverse((s, _, id))) = oracle.pop() {
                assert_eq!(q.pop(), Some((time_of(s), id)), "drain diverged");
            }
            assert!(q.is_empty());
        }
    }
}
