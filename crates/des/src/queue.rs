//! Time-ordered event queue with stable FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: ordered by time, then by an explicit tie-break key,
/// then by insertion sequence number. For plain [`EventQueue::push`] the key
/// *is* the sequence number, so events scheduled for the same instant pop
/// in FIFO order; [`EventQueue::push_keyed`] lets callers impose their own
/// deterministic same-instant order that does not depend on when the event
/// happened to be inserted.
struct Scheduled<E> {
    time: SimTime,
    key: u64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event
        // (and, within an instant, the lowest key then sequence number) on
        // top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in the order they were pushed (or, with
/// [`push_keyed`](Self::push_keyed), in ascending key order). This
/// determinism is what makes whole-server simulations reproducible
/// bit-for-bit.
///
/// # Examples
///
/// ```
/// use des_engine::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(30), "late");
/// q.push(SimTime::from_nanos(10), "first");
/// q.push(SimTime::from_nanos(10), "second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(30), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.push_keyed(time, seq, payload);
    }

    /// Schedules `payload` to fire at `time`, breaking same-instant ties by
    /// `key` (ascending) before insertion order.
    ///
    /// Mixing keyed and unkeyed pushes in one queue is well-defined (plain
    /// pushes use their sequence number as the key) but rarely what you
    /// want, since sequence numbers grow past explicit keys.
    pub fn push_keyed(&mut self, time: SimTime, key: u64, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time,
            key,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The `(time, key)` stamp of the earliest pending event, if any — the
    /// position a windowed driver compares against a synchronization bound
    /// without consuming the event.
    #[must_use]
    pub fn peek_time_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|s| (s.time, s.key))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events (the sequence counter keeps advancing so
    /// FIFO stability is preserved across clears).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 1, 9, 3, 7] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_ties_pop_in_key_order_regardless_of_insertion() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for &k in &[7u64, 3, 9, 1, 5] {
            q.push_keyed(t, k, k);
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_keys_fall_back_to_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(10);
        q.push_keyed(t, 1, "a");
        q.push_keyed(t, 1, "b");
        q.push_keyed(t, 0, "c");
        let popped: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(popped, vec!["c", "a", "b"]);
    }

    #[test]
    fn time_still_dominates_keys() {
        let mut q = EventQueue::new();
        q.push_keyed(SimTime::from_nanos(20), 0, "later");
        q.push_keyed(SimTime::from_nanos(10), 99, "earlier");
        assert_eq!(q.pop().map(|(_, v)| v), Some("earlier"));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(8), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(8)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_stability_survives_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        q.push(SimTime::ZERO, 2);
        q.push(SimTime::ZERO, 3);
        assert_eq!(q.pop().map(|(_, v)| v), Some(2));
        assert_eq!(q.pop().map(|(_, v)| v), Some(3));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let q: EventQueue<u8> = EventQueue::with_capacity(64);
        assert!(q.is_empty());
    }

    #[test]
    fn debug_is_nonempty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(format!("{q:?}").contains("EventQueue"));
    }
}
