//! The simulation driver: a clock plus an event queue.

use crate::queue::{pack_stamp, EventQueue};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation: a monotonically advancing clock and a queue
/// of future events.
///
/// The API is pull-style: the caller repeatedly asks for
/// [`next_event`](Simulation::next_event) and handles it, scheduling
/// follow-up events in the process. This sidesteps the aliasing problems of
/// callback-driven engines — handler code may borrow the world mutably while
/// holding `&mut Simulation`.
///
/// # Examples
///
/// A single-server queue where each job takes 10 µs:
///
/// ```
/// use des_engine::{SimDuration, Simulation};
///
/// enum Ev { Arrive, Done }
///
/// let mut sim = Simulation::new();
/// for i in 0..3u64 {
///     sim.schedule_in(SimDuration::from_micros(i * 4), Ev::Arrive);
/// }
/// let (mut busy_until, mut completed) = (sim.now(), 0u32);
/// while let Some((now, ev)) = sim.next_event() {
///     match ev {
///         Ev::Arrive => {
///             let start = busy_until.max(now);
///             busy_until = start + SimDuration::from_micros(10);
///             sim.schedule_at(busy_until, Ev::Done);
///         }
///         Ev::Done => completed += 1,
///     }
/// }
/// assert_eq!(completed, 3);
/// assert_eq!(sim.now().as_nanos(), 30_000); // 3 back-to-back 10 µs jobs
/// ```
pub struct Simulation<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    peak_pending: usize,
}

impl<E> Simulation<E> {
    /// Creates a simulation with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates a simulation whose event queue has room for `capacity`
    /// events before reallocating.
    ///
    /// Sizing the queue to the simulation's steady-state event population
    /// (for the inference server: one completion per partition plus the
    /// next streamed arrival) makes the event loop allocation-free after
    /// startup.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Simulation {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
            peak_pending: 0,
        }
    }

    /// The current simulated instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The largest number of events that were ever pending at once.
    #[must_use]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Events the queue can hold before its heap or payload slab
    /// reallocates — see [`EventQueue::capacity`](crate::EventQueue::capacity).
    /// A run whose [`peak_pending`](Self::peak_pending) stays at or below
    /// the construction-time capacity never grew the queue.
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Events scheduled in the past are clamped to fire "now": simulated time
    /// never runs backwards.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Schedules `event` at the absolute instant `at`, breaking
    /// same-instant ties by `key` (ascending) before insertion order — see
    /// [`EventQueue::push_keyed`](crate::EventQueue::push_keyed).
    ///
    /// Events scheduled in the past are clamped to fire "now".
    pub fn schedule_at_keyed(&mut self, at: SimTime, key: u64, event: E) {
        self.queue.push_keyed(at.max(self.now), key, event);
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
        self.peak_pending = self.peak_pending.max(self.queue.len());
    }

    /// Advances the clock to the earliest pending event and returns it, or
    /// `None` when the queue has drained.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(time >= self.now, "event queue produced time travel");
        self.now = time;
        self.processed += 1;
        Some((time, event))
    }

    /// Schedules `event` at `(at, key)` and advances to the earliest
    /// pending event in one fused step — exactly
    /// [`schedule_at_keyed`](Self::schedule_at_keyed) followed by
    /// [`next_event`](Self::next_event), including the past-clamp, the
    /// high-water accounting and the processed count. Always returns an
    /// event (the queue is nonempty after the push). The streamed server
    /// drivers hold each handler's final schedule in a one-slot register
    /// and feed it here, turning the dispatch/complete cycle's push + pop
    /// pair into one [`EventQueue::push_pop`](crate::EventQueue::push_pop).
    pub fn push_pop(&mut self, at: SimTime, key: u64, event: E) -> (SimTime, E) {
        self.peak_pending = self.peak_pending.max(self.queue.len() + 1);
        let (time, event) = self.queue.push_pop(at.max(self.now), key, event);
        debug_assert!(time >= self.now, "event queue produced time travel");
        self.now = time;
        self.processed += 1;
        (time, event)
    }

    /// Like [`next_event`](Simulation::next_event), but returns `None`
    /// (leaving the event queued) once the next event lies strictly beyond
    /// `horizon`. The clock is advanced to `horizon` in that case, so
    /// utilization accounting over a fixed window stays exact.
    pub fn next_event_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= horizon => self.next_event(),
            _ => {
                if self.now < horizon {
                    self.now = horizon;
                }
                None
            }
        }
    }

    /// The `(time, key)` stamp of the earliest pending event, if any.
    ///
    /// This is the lexicographic position the queue will pop next — what a
    /// conservative windowed driver merges against its own pending items.
    #[must_use]
    pub fn peek_time_key(&self) -> Option<(SimTime, u64)> {
        self.queue.peek_time_key()
    }

    /// Like [`next_event`](Simulation::next_event), but only pops while the
    /// earliest pending event's `(time, key)` stamp is lexicographically
    /// **strictly before** `bound` — the conservative-window advancement
    /// primitive: a shard lane drains everything it already knows about up
    /// to the next synchronization point without ever touching an event at
    /// or beyond it.
    ///
    /// Unlike [`next_event_before`](Simulation::next_event_before), a
    /// declined pop leaves the clock untouched: the lane's `now` keeps
    /// meaning "last local activity", which windowed utilization and
    /// loan-integral accounting rely on.
    pub fn next_event_if_before(&mut self, bound: (SimTime, u64)) -> Option<(SimTime, E)> {
        self.next_event_if_before_stamp(pack_stamp(bound.0, bound.1))
    }

    /// The packed `(time << 64) | key` stamp of the earliest pending event,
    /// if any — [`peek_time_key`](Self::peek_time_key) as one integer. The
    /// packing is bijective (see [`pack_stamp`]), so comparing stamps is
    /// exactly comparing `(time, key)` pairs lexicographically.
    #[must_use]
    pub fn peek_stamp(&self) -> Option<u128> {
        self.queue.peek_stamp()
    }

    /// [`next_event_if_before`](Self::next_event_if_before) against a
    /// pre-[`pack_stamp`]ed bound: the windowed drivers pack each
    /// synchronization bound once and merge mailboxed commands against
    /// lane events with single-integer compares.
    pub fn next_event_if_before_stamp(&mut self, bound: u128) -> Option<(SimTime, E)> {
        match self.queue.peek_stamp() {
            Some(stamp) if stamp < bound => self.next_event(),
            _ => None,
        }
    }

    /// Advances the clock to `at` if it lags (never backwards). A windowed
    /// driver calls this before applying an externally timestamped action
    /// (a routed arrival, a fault) so that follow-up events the handler
    /// schedules "now" land at the action's instant, exactly as they would
    /// in a single shared event queue.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }

    /// Whether any events remain.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for Simulation<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        let sim: Simulation<()> = Simulation::new();
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.events_processed(), 0);
        assert!(!sim.has_pending());
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(100), "a");
        sim.schedule_in(SimDuration::from_nanos(40), "b");
        assert_eq!(sim.pending_events(), 2);

        let (t1, e1) = sim.next_event().unwrap();
        assert_eq!((t1.as_nanos(), e1), (40, "b"));
        assert_eq!(sim.now(), t1);

        let (t2, e2) = sim.next_event().unwrap();
        assert_eq!((t2.as_nanos(), e2), (100, "a"));
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(sim.next_event(), None);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(50), 1);
        sim.next_event().unwrap();
        sim.schedule_at(SimTime::from_nanos(10), 2); // in the past
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t, SimTime::from_nanos(50));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(1_000), "first");
        sim.next_event().unwrap();
        sim.schedule_in(SimDuration::from_nanos(5), "second");
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t.as_nanos(), 1_005);
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(100), "early");
        sim.schedule_at(SimTime::from_nanos(900), "late");
        let horizon = SimTime::from_nanos(500);

        assert!(sim.next_event_before(horizon).is_some());
        assert!(sim.next_event_before(horizon).is_none());
        assert_eq!(sim.now(), horizon);
        assert!(sim.has_pending(), "late event must remain queued");
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(500), "edge");
        assert!(sim.next_event_before(SimTime::from_nanos(500)).is_some());
    }

    #[test]
    fn keyed_scheduling_orders_same_instant_events() {
        let mut sim = Simulation::new();
        let t = SimTime::from_nanos(100);
        sim.schedule_at_keyed(t, 2, "second");
        sim.schedule_at_keyed(t, 1, "first");
        assert_eq!(sim.next_event().map(|(_, e)| e), Some("first"));
        assert_eq!(sim.next_event().map(|(_, e)| e), Some("second"));
    }

    #[test]
    fn bounded_pop_respects_the_time_key_order() {
        let mut sim = Simulation::new();
        let t = SimTime::from_nanos(100);
        sim.schedule_at_keyed(t, 3, "k3");
        sim.schedule_at_keyed(t, 7, "k7");
        sim.schedule_at_keyed(SimTime::from_nanos(50), 9, "early");
        assert_eq!(sim.peek_time_key(), Some((SimTime::from_nanos(50), 9)));
        // Everything strictly before (100, 7) pops; (100, 7) itself stays.
        let bound = (t, 7);
        assert_eq!(
            sim.next_event_if_before(bound).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(sim.next_event_if_before(bound).map(|(_, e)| e), Some("k3"));
        assert_eq!(sim.next_event_if_before(bound), None);
        assert_eq!(sim.now(), t, "clock sits at the last popped event");
        assert!(sim.has_pending(), "the bound event itself is untouched");
        // A declined pop never advances the clock past the last activity.
        assert_eq!(sim.next_event_if_before((t, 7)), None);
        assert_eq!(sim.now(), t);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.advance_to(SimTime::from_nanos(40));
        assert_eq!(sim.now(), SimTime::from_nanos(40));
        sim.advance_to(SimTime::from_nanos(10));
        assert_eq!(sim.now(), SimTime::from_nanos(40), "never backwards");
    }

    #[test]
    fn peak_pending_tracks_high_water_mark() {
        let mut sim = Simulation::with_capacity(8);
        assert_eq!(sim.peak_pending(), 0);
        for i in 0..5u64 {
            sim.schedule_at(SimTime::from_nanos(i), i);
        }
        assert_eq!(sim.peak_pending(), 5);
        while sim.next_event().is_some() {}
        // Draining does not lower the high-water mark.
        assert_eq!(sim.peak_pending(), 5);
    }
}
