//! # des-engine — deterministic discrete-event simulation kernel
//!
//! A small, allocation-light discrete-event simulation (DES) core used by the
//! PARIS+ELSA inference-server simulator. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond time types that make
//!   the event loop fully deterministic (no floating-point drift) and keep
//!   instants and durations statically distinct,
//! * [`EventQueue`] — a time-ordered priority queue with stable FIFO
//!   tie-breaking for events scheduled at the same instant,
//! * [`Simulation`] — a clock plus event queue with a pull-style stepping API
//!   that avoids the borrow gymnastics of callback-based designs.
//!
//! The engine is payload-generic: the simulated world defines its own event
//! enum and drives the loop itself, which keeps handler code free to borrow
//! world state mutably while scheduling follow-up events.
//!
//! ```
//! use des_engine::{SimDuration, Simulation};
//!
//! #[derive(Debug, PartialEq)]
//! enum Event {
//!     Ping(u32),
//! }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_in(SimDuration::from_millis(5), Event::Ping(1));
//! sim.schedule_in(SimDuration::from_millis(2), Event::Ping(2));
//!
//! let mut order = Vec::new();
//! while let Some((time, event)) = sim.next_event() {
//!     let Event::Ping(id) = event;
//!     order.push((time.as_millis_f64(), id));
//! }
//! assert_eq!(order, vec![(2.0, 2), (5.0, 1)]);
//! ```

mod queue;
mod sim;
mod time;

pub use queue::{pack_stamp, unpack_time, EventQueue};
pub use sim::Simulation;
pub use time::{SimDuration, SimTime};
