//! Fixed-footprint latency histogram for O(1)-memory sweeps.
//!
//! [`LatencyRecorder`](crate::LatencyRecorder) keeps every sample, which is
//! exact but costs 8 bytes per query — a rate sweep pushing millions of
//! simulated queries per operating point pays O(trace) memory for numbers
//! that end up summarized to a handful of percentiles. `LatencyHistogram`
//! is the summary-mode alternative: an HDR-style log-linear histogram with
//! 64 sub-buckets per power of two, giving ≤ 1.6 % relative error on any
//! percentile while occupying a fixed ~30 KB regardless of how many
//! samples are recorded.

use std::fmt;

/// log2 of the number of linear sub-buckets per octave. 6 bits → every
/// bucket spans at most `2^-6 = 1.56 %` of its value.
const MANTISSA_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << MANTISSA_BITS;
/// Bucket count covering the full `u64` nanosecond range.
const BUCKETS: usize = (64 - MANTISSA_BITS as usize + 1) * SUB_BUCKETS;

/// A fixed-size log-linear histogram of latency samples (nanoseconds) with
/// bounded-relative-error percentile queries.
///
/// # Examples
///
/// ```
/// use server_metrics::LatencyHistogram;
///
/// let mut hist = LatencyHistogram::new();
/// for ms in 1u64..=100 {
///     hist.record(ms * 1_000_000);
/// }
/// assert_eq!(hist.count(), 100);
/// let p95 = hist.percentile_ns(0.95) as f64;
/// assert!((p95 / 95e6 - 1.0).abs() < 0.02, "≤ 1.6 % relative error");
/// assert_eq!(hist.max_ns(), 100_000_000);
/// ```
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

/// The bucket index a value lands in: values below `2^MANTISSA_BITS` map
/// to themselves; larger values share an octave split into linear
/// sub-buckets.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let exp = msb - MANTISSA_BITS;
        let mantissa = (v >> exp) & (SUB_BUCKETS as u64 - 1);
        ((exp as usize + 1) << MANTISSA_BITS) | mantissa as usize
    }
}

/// The inclusive lower bound of values mapping to `bucket`.
fn bucket_low(bucket: usize) -> u64 {
    let exp = (bucket >> MANTISSA_BITS) as u32;
    let mantissa = (bucket & (SUB_BUCKETS - 1)) as u64;
    if exp == 0 {
        mantissa
    } else {
        (SUB_BUCKETS as u64 + mantissa) << (exp - 1)
    }
}

/// The inclusive upper bound of values mapping to `bucket`.
fn bucket_high(bucket: usize) -> u64 {
    let exp = (bucket >> MANTISSA_BITS) as u32;
    if exp == 0 {
        bucket_low(bucket)
    } else {
        bucket_low(bucket) + (1u64 << (exp - 1)) - 1
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample in nanoseconds.
    #[inline]
    pub fn record(&mut self, latency_ns: u64) {
        self.counts[bucket_of(latency_ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(latency_ns);
        self.min_ns = self.min_ns.min(latency_ns);
        self.max_ns = self.max_ns.max(latency_ns);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean latency in milliseconds (0 if empty).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64 / 1e6
    }

    /// Exact maximum sample, nanoseconds (0 if empty).
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// Exact maximum sample in milliseconds (0 if empty).
    #[must_use]
    pub fn max_ms(&self) -> f64 {
        self.max_ns() as f64 / 1e6
    }

    /// Exact minimum sample, nanoseconds (0 if empty).
    #[must_use]
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// The `p`-quantile latency in nanoseconds by nearest rank, accurate to
    /// the bucket width (≤ 1.6 % relative error; 0 if empty). Exact-sample
    /// extremes are substituted at the edges so `percentile_ns(1.0)` equals
    /// the true maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile must be within [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Clamp the bucket's representative value into the observed
                // range so edge quantiles stay exact.
                let mid = bucket_low(bucket).midpoint(bucket_high(bucket));
                return mid.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// The `p`-quantile latency in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.percentile_ns(p) as f64 / 1e6
    }

    /// The paper's headline metric: 95th-percentile tail latency, ms.
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(0.95)
    }

    /// Approximate number of samples exceeding `sla_ns`: buckets are
    /// counted by their midpoint, so samples within one bucket width of
    /// the threshold may be mis-attributed.
    #[must_use]
    pub fn violations(&self, sla_ns: u64) -> u64 {
        let boundary = bucket_of(sla_ns);
        self.counts[boundary + 1..].iter().sum::<u64>()
            + if bucket_low(boundary).midpoint(bucket_high(boundary)) > sla_ns {
                self.counts[boundary]
            } else {
                0
            }
    }

    /// Fraction of samples exceeding `sla_ns` (0 if empty), to bucket
    /// accuracy.
    #[must_use]
    pub fn violation_rate(&self, sla_ns: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.violations(sla_ns) as f64 / self.count as f64
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Builds the union of several histograms — how a cluster report folds
    /// its per-shard latency populations into one fleet-wide distribution.
    ///
    /// # Examples
    ///
    /// ```
    /// use server_metrics::LatencyHistogram;
    ///
    /// let a: LatencyHistogram = [1_000_000u64, 2_000_000].into_iter().collect();
    /// let b: LatencyHistogram = [3_000_000u64].into_iter().collect();
    /// let all = LatencyHistogram::merged([&a, &b]);
    /// assert_eq!(all.count(), 3);
    /// assert_eq!(all.max_ns(), 3_000_000);
    /// ```
    #[must_use]
    pub fn merged<'a, I>(parts: I) -> LatencyHistogram
    where
        I: IntoIterator<Item = &'a LatencyHistogram>,
    {
        let mut out = LatencyHistogram::new();
        for part in parts {
            out.merge(part);
        }
        out
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean_ms", &self.mean_ms())
            .field("p95_ms", &self.p95_ms())
            .field("max_ms", &self.max_ms())
            .finish()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples, mean {:.3} ms, p95 {:.3} ms",
            self.count(),
            self.mean_ms(),
            self.p95_ms()
        )
    }
}

impl Extend<u64> for LatencyHistogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for LatencyHistogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut hist = LatencyHistogram::new();
        hist.extend(iter);
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every bucket's low bound maps back to the bucket, and boundaries
        // are contiguous.
        for bucket in 0..BUCKETS - 1 {
            let low = bucket_low(bucket);
            let high = bucket_high(bucket);
            assert_eq!(bucket_of(low), bucket, "low of bucket {bucket}");
            assert_eq!(bucket_of(high), bucket, "high of bucket {bucket}");
            assert!(high >= low);
            if bucket_low(bucket + 1) > 0 {
                assert_eq!(
                    bucket_low(bucket + 1),
                    high.wrapping_add(1),
                    "bucket {bucket} contiguous with successor"
                );
            }
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.percentile_ns(0.0), 0);
        assert_eq!(h.percentile_ns(1.0), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile_ns(0.95), 0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.violation_rate(1), 0.0);
    }

    #[test]
    fn percentiles_bound_relative_error() {
        let h: LatencyHistogram = (1..=10_000u64).map(|v| v * 997).collect();
        for p in [0.5, 0.9, 0.95, 0.99] {
            let exact = 997.0 * (p * 10_000.0f64).ceil();
            let approx = h.percentile_ns(p) as f64;
            assert!(
                (approx / exact - 1.0).abs() < 0.016,
                "p{p}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn mean_and_extremes_are_exact() {
        let h: LatencyHistogram = [5_000_000u64, 15_000_000].into_iter().collect();
        assert!((h.mean_ms() - 10.0).abs() < 1e-9);
        assert_eq!(h.max_ns(), 15_000_000);
        assert_eq!(h.min_ns(), 5_000_000);
        assert!((h.max_ms() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn violation_rate_tracks_threshold() {
        let h: LatencyHistogram = (1..=1000u64).map(|v| v * 1_000_000).collect();
        let rate = h.violation_rate(500_000_000);
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
        assert_eq!(h.violation_rate(u64::MAX / 2), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a: LatencyHistogram = [1_000u64, 2_000].into_iter().collect();
        let b: LatencyHistogram = [3_000u64].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 3_000);
    }

    #[test]
    fn footprint_is_fixed() {
        let mut h = LatencyHistogram::new();
        let before = h.counts.capacity();
        for v in 0..100_000u64 {
            h.record(v * 7919);
        }
        assert_eq!(h.counts.capacity(), before, "no growth while recording");
    }

    #[test]
    #[should_panic(expected = "quantile must be within")]
    fn out_of_range_quantile_panics() {
        let h = LatencyHistogram::new();
        let _ = h.percentile_ns(-0.1);
    }

    #[test]
    fn display_is_informative() {
        let h: LatencyHistogram = [2_000_000u64].into_iter().collect();
        assert!(h.to_string().contains("1 samples"));
    }
}
