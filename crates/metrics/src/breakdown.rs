//! Queue/service latency decomposition summary.
//!
//! End-to-end latency percentiles say *that* a tail regressed; the
//! breakdown says *where* — time spent waiting for a worker vs time on the
//! silicon vs reconfiguration downtime. The fields are computed from two
//! always-on [`LatencyHistogram`]s the dispatch core maintains (queue wait
//! and service time per completion), so the summary exists at O(1) memory
//! in every run, traced or not.

use crate::LatencyHistogram;

/// Percentile summary of the queue/service split plus the run's total
/// charged reconfiguration downtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// Median queue wait (`started − dispatched`), nanoseconds.
    pub queue_ns_p50: u64,
    /// p99 queue wait, nanoseconds.
    pub queue_ns_p99: u64,
    /// Median service time (`completed − started`), nanoseconds.
    pub service_ns_p50: u64,
    /// p99 service time, nanoseconds.
    pub service_ns_p99: u64,
    /// Total reslice downtime charged by every reconfiguration in the run,
    /// nanoseconds.
    pub reconfig_wait_ns_total: u64,
}

impl LatencyBreakdown {
    /// Summarizes the two decomposition histograms (empty histograms yield
    /// zeros) plus the run's total charged reconfiguration downtime.
    #[must_use]
    pub fn from_histograms(
        queue: &LatencyHistogram,
        service: &LatencyHistogram,
        reconfig_wait_ns_total: u64,
    ) -> Self {
        let pct = |h: &LatencyHistogram, p: f64| if h.is_empty() { 0 } else { h.percentile_ns(p) };
        LatencyBreakdown {
            queue_ns_p50: pct(queue, 0.50),
            queue_ns_p99: pct(queue, 0.99),
            service_ns_p50: pct(service, 0.50),
            service_ns_p99: pct(service, 0.99),
            reconfig_wait_ns_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histograms_summarize_to_zero() {
        let empty = LatencyHistogram::new();
        let b = LatencyBreakdown::from_histograms(&empty, &empty, 7);
        assert_eq!(b.queue_ns_p50, 0);
        assert_eq!(b.service_ns_p99, 0);
        assert_eq!(b.reconfig_wait_ns_total, 7);
    }

    #[test]
    fn percentiles_come_from_the_right_histogram() {
        let mut queue = LatencyHistogram::new();
        let mut service = LatencyHistogram::new();
        for i in 1..=100u64 {
            queue.record(i * 1_000); // 1..100 µs
            service.record(i * 1_000_000); // 1..100 ms
        }
        let b = LatencyBreakdown::from_histograms(&queue, &service, 0);
        assert!(
            b.queue_ns_p50 >= 49_000 && b.queue_ns_p50 <= 52_000,
            "{b:?}"
        );
        assert!(b.queue_ns_p99 >= 97_000 && b.queue_ns_p99 <= 100_000);
        assert!(b.service_ns_p50 >= 49_000_000 && b.service_ns_p50 <= 52_000_000);
        assert!(b.service_ns_p99 > b.service_ns_p50);
    }
}
