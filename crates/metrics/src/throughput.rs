//! Throughput and latency-bounded-throughput accounting.

use std::fmt;

/// Summary of one measured run at a fixed offered load: the coordinates of
/// one point on the paper's Figure 11 curves.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThroughputPoint {
    /// Offered arrival rate, queries/second.
    pub offered_qps: f64,
    /// Completed queries per second over the measurement window.
    pub achieved_qps: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_ms: f64,
    /// Fraction of queries violating the SLA target.
    pub sla_violation_rate: f64,
    /// Mean GPU-partition utilization over the window.
    pub mean_utilization: f64,
}

impl ThroughputPoint {
    /// Whether this operating point meets a tail-latency target (ms).
    #[must_use]
    pub fn meets_target(&self, target_ms: f64) -> bool {
        self.p95_ms <= target_ms
    }
}

impl fmt::Display for ThroughputPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "offered {:.0} qps → achieved {:.0} qps, p95 {:.2} ms, {:.1}% SLA violations, util {:.0}%",
            self.offered_qps,
            self.achieved_qps,
            self.p95_ms,
            self.sla_violation_rate * 100.0,
            self.mean_utilization * 100.0
        )
    }
}

/// Finds the latency-bounded throughput from a rate sweep: the highest
/// achieved QPS among operating points whose p95 stays within `target_ms`
/// (paper §VI-B). Returns 0 if no point qualifies.
///
/// # Examples
///
/// ```
/// use server_metrics::{latency_bounded_throughput, ThroughputPoint};
///
/// let sweep = vec![
///     ThroughputPoint { offered_qps: 100.0, achieved_qps: 100.0, p95_ms: 5.0,
///                       sla_violation_rate: 0.0, mean_utilization: 0.2 },
///     ThroughputPoint { offered_qps: 200.0, achieved_qps: 199.0, p95_ms: 9.0,
///                       sla_violation_rate: 0.01, mean_utilization: 0.4 },
///     ThroughputPoint { offered_qps: 400.0, achieved_qps: 310.0, p95_ms: 80.0,
///                       sla_violation_rate: 0.4, mean_utilization: 0.9 },
/// ];
/// assert_eq!(latency_bounded_throughput(&sweep, 10.0), 199.0);
/// ```
#[must_use]
pub fn latency_bounded_throughput(sweep: &[ThroughputPoint], target_ms: f64) -> f64 {
    sweep
        .iter()
        .filter(|p| p.meets_target(target_ms))
        .map(|p| p.achieved_qps)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(qps: f64, p95: f64) -> ThroughputPoint {
        ThroughputPoint {
            offered_qps: qps,
            achieved_qps: qps,
            p95_ms: p95,
            sla_violation_rate: 0.0,
            mean_utilization: 0.5,
        }
    }

    #[test]
    fn picks_highest_qualifying_rate() {
        let sweep = vec![point(10.0, 1.0), point(20.0, 2.0), point(30.0, 50.0)];
        assert_eq!(latency_bounded_throughput(&sweep, 5.0), 20.0);
    }

    #[test]
    fn returns_zero_when_nothing_qualifies() {
        let sweep = vec![point(10.0, 100.0)];
        assert_eq!(latency_bounded_throughput(&sweep, 5.0), 0.0);
    }

    #[test]
    fn empty_sweep_is_zero() {
        assert_eq!(latency_bounded_throughput(&[], 5.0), 0.0);
    }

    #[test]
    fn meets_target_is_inclusive() {
        assert!(point(1.0, 5.0).meets_target(5.0));
        assert!(!point(1.0, 5.1).meets_target(5.0));
    }

    #[test]
    fn display_has_all_fields() {
        let s = point(100.0, 3.0).to_string();
        assert!(s.contains("qps") && s.contains("p95") && s.contains("util"));
    }
}
