//! # server-metrics — measurement plumbing for inference-server experiments
//!
//! The statistics layer of the PARIS+ELSA reproduction:
//!
//! * [`LatencyRecorder`] — per-query latency samples with percentile and
//!   SLA-violation queries (the paper's p95 tail-latency metric),
//! * [`LatencyHistogram`] — a fixed-footprint log-linear alternative for
//!   O(1)-memory sweeps (≤ 1.6 % percentile error),
//! * [`BusyTracker`] — time-weighted busy/idle accounting for partitions,
//! * [`ThroughputPoint`] / [`latency_bounded_throughput`] — the
//!   latency-bounded throughput metric of §VI-B,
//! * [`WindowedTail`] — tumbling-window worst-case tail latency, the spike
//!   statistic behind the benches' `reconfig_dip`,
//! * [`LatencyBreakdown`] — queue/service decomposition percentiles the
//!   run reports surface (`queue_ns_p50/p99`, `service_ns_p50/p99`).
//!
//! ```
//! use server_metrics::LatencyRecorder;
//!
//! let rec: LatencyRecorder = (1..=20u64).map(|ms| ms * 1_000_000).collect();
//! assert_eq!(rec.p95_ms(), 19.0);
//! ```

mod breakdown;
mod busy;
mod histogram;
mod latency;
mod throughput;
mod windowed;

pub use breakdown::LatencyBreakdown;
pub use busy::BusyTracker;
pub use histogram::LatencyHistogram;
pub use latency::LatencyRecorder;
pub use throughput::{latency_bounded_throughput, ThroughputPoint};
pub use windowed::WindowedTail;
