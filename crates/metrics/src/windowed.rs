//! Worst-window tail latency: the size of a transient latency spike.
//!
//! A whole-run percentile hides a short outage — a mid-run MIG reslice
//! that stalls queries for half a second barely moves a ten-second run's
//! p99. Slicing the run into fixed tumbling windows and taking the **worst
//! window's** percentile exposes exactly that spike, which is the metric a
//! rolling reconfiguration is designed to shrink (the `reconfig_dip` field
//! of the trajectory benches).

use crate::LatencyHistogram;

/// Tumbling-window tail-latency tracker: latencies are bucketed by their
/// *completion* timestamp into fixed windows, each window holding a
/// fixed-footprint [`LatencyHistogram`], and the worst window's percentile
/// is the spike statistic. Memory is O(run length / window), independent
/// of the query count.
///
/// # Examples
///
/// ```
/// use server_metrics::WindowedTail;
///
/// let mut tail = WindowedTail::new(1_000_000_000); // 1 s windows
/// tail.record(100, 5_000_000);                     // calm window: 5 ms
/// tail.record(1_500_000_000, 80_000_000);          // spike window: 80 ms
/// assert!(tail.worst_percentile_ms(0.99, 1) > 79.0);
/// assert_eq!(tail.windows(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedTail {
    window_ns: u64,
    histograms: Vec<LatencyHistogram>,
}

impl WindowedTail {
    /// Creates a tracker with the given tumbling-window width.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    #[must_use]
    pub fn new(window_ns: u64) -> Self {
        assert!(window_ns > 0, "window must be positive");
        WindowedTail {
            window_ns,
            histograms: Vec::new(),
        }
    }

    /// The configured window width, nanoseconds.
    #[must_use]
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Records one completion: `completed_ns` picks the window,
    /// `latency_ns` is the sample.
    pub fn record(&mut self, completed_ns: u64, latency_ns: u64) {
        self.record_at((completed_ns / self.window_ns) as usize, latency_ns);
    }

    /// [`record`](Self::record) with the window index already computed —
    /// for callers that track their current window incrementally (the
    /// online telemetry lane) and can skip the division.
    pub fn record_at(&mut self, idx: usize, latency_ns: u64) {
        if idx >= self.histograms.len() {
            self.histograms.resize_with(idx + 1, LatencyHistogram::new);
        }
        self.histograms[idx].record(latency_ns);
    }

    /// Number of **non-empty** windows so far — windows that received at
    /// least one sample. Interior windows a sparse run skipped over cost
    /// an empty histogram each but are not counted.
    #[must_use]
    pub fn windows(&self) -> usize {
        self.histograms.iter().filter(|h| !h.is_empty()).count()
    }

    /// Number of windows allocated so far — the index one past the last
    /// window that received a sample, **including** empty interior windows.
    /// This is the grid length a fixed-step sampler (the observability
    /// metric registry) iterates over.
    #[must_use]
    pub fn allocated_windows(&self) -> usize {
        self.histograms.len()
    }

    /// The histogram behind window `idx`, if that window has been
    /// allocated. Empty interior windows return an empty histogram, so a
    /// grid sampler can read rates off every bin uniformly.
    #[must_use]
    pub fn histogram(&self, idx: usize) -> Option<&LatencyHistogram> {
        self.histograms.get(idx)
    }

    /// Merges `other` into `self` window-by-window, as if every sample had
    /// been recorded into one tracker. All histogram state is integer
    /// counts, so the merge is exact and commutative — the shard-parallel
    /// online telemetry plane relies on this to combine per-lane partial
    /// tails into the same bytes a single-lane pass would produce.
    ///
    /// # Panics
    ///
    /// Panics if the two trackers disagree on `window_ns`.
    pub fn merge(&mut self, other: &WindowedTail) {
        assert_eq!(
            self.window_ns, other.window_ns,
            "cannot merge tails with different window widths"
        );
        if other.histograms.len() > self.histograms.len() {
            self.histograms
                .resize_with(other.histograms.len(), LatencyHistogram::new);
        }
        for (mine, theirs) in self.histograms.iter_mut().zip(&other.histograms) {
            mine.merge(theirs);
        }
    }

    /// The worst window's `p`-percentile latency in milliseconds, over
    /// windows holding at least `min_count` samples (0 when nothing
    /// qualifies). Bucket-accurate, like every histogram percentile.
    #[must_use]
    pub fn worst_percentile_ms(&self, p: f64, min_count: u64) -> f64 {
        self.histograms
            .iter()
            .filter(|h| h.count() >= min_count.max(1))
            .map(|h| h.percentile_ms(p))
            .fold(0.0, f64::max)
    }

    /// The worst window's p99 in milliseconds — the headline spike
    /// statistic of the trajectory benches' `reconfig_dip`.
    #[must_use]
    pub fn worst_p99_ms(&self) -> f64 {
        self.worst_percentile_ms(0.99, 1)
    }

    /// Whether window `idx` overlaps any of the (inclusive, nanosecond)
    /// `[start, end]` intervals.
    fn overlaps(&self, idx: usize, intervals: &[(u64, u64)]) -> bool {
        let win_start = idx as u64 * self.window_ns;
        let win_end = win_start + self.window_ns;
        intervals
            .iter()
            .any(|&(start, end)| win_start <= end && start < win_end)
    }

    /// The worst `p`-percentile (milliseconds) over the **degraded**
    /// windows — those overlapping any of the given `[start_ns, end_ns]`
    /// intervals (an outage, a recovery transition) — holding at least
    /// `min_count` samples. 0 when nothing qualifies.
    ///
    /// This is the fault benches' recovery-dip statistic: the spike a
    /// failure causes lives in the windows around its outage, and the
    /// whole-run worst window would conflate it with unrelated load spikes.
    #[must_use]
    pub fn worst_percentile_ms_within(
        &self,
        p: f64,
        min_count: u64,
        intervals: &[(u64, u64)],
    ) -> f64 {
        self.worst_percentile_ms_split(p, min_count, intervals, true)
    }

    /// The complement of [`worst_percentile_ms_within`]: the worst
    /// `p`-percentile over the **healthy** windows, i.e. those overlapping
    /// none of the intervals. The degraded/healthy pair quantifies how much
    /// of a run's tail a fault is responsible for.
    ///
    /// [`worst_percentile_ms_within`]: Self::worst_percentile_ms_within
    #[must_use]
    pub fn worst_percentile_ms_outside(
        &self,
        p: f64,
        min_count: u64,
        intervals: &[(u64, u64)],
    ) -> f64 {
        self.worst_percentile_ms_split(p, min_count, intervals, false)
    }

    /// The shared body of the degraded/healthy pair: worst window
    /// percentile over the windows whose interval-overlap equals
    /// `overlapping`.
    fn worst_percentile_ms_split(
        &self,
        p: f64,
        min_count: u64,
        intervals: &[(u64, u64)],
        overlapping: bool,
    ) -> f64 {
        self.histograms
            .iter()
            .enumerate()
            .filter(|&(idx, h)| {
                h.count() >= min_count.max(1) && self.overlaps(idx, intervals) == overlapping
            })
            .map(|(_, h)| h.percentile_ms(p))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_dominates_the_worst_window() {
        let mut t = WindowedTail::new(1_000);
        for i in 0..100 {
            t.record(i * 10, 50); // first window: all 50 ns
        }
        for i in 0..10 {
            t.record(5_000 + i, 9_000); // later window: 9 µs spike
        }
        let worst = t.worst_percentile_ms(0.99, 1);
        assert!(worst > 0.0089 && worst < 0.0095, "{worst}");
        assert_eq!(t.windows(), 2);
    }

    #[test]
    fn min_count_filters_thin_windows() {
        let mut t = WindowedTail::new(1_000);
        for i in 0..100 {
            t.record(i, 100);
        }
        t.record(9_500, 1_000_000); // a single-sample outlier window
        assert!(t.worst_percentile_ms(0.99, 1) > 0.9);
        assert!(t.worst_percentile_ms(0.99, 2) < 0.001);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t = WindowedTail::new(1_000_000);
        assert_eq!(t.worst_p99_ms(), 0.0);
        assert_eq!(t.windows(), 0);
    }

    #[test]
    fn interior_gaps_cost_only_empty_histograms() {
        let mut t = WindowedTail::new(1_000);
        t.record(500, 10);
        t.record(1_000_500, 20); // 1000 windows later
        assert_eq!(t.windows(), 2, "empty interior windows don't count");
        assert!(t.worst_p99_ms() > 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = WindowedTail::new(0);
    }

    #[test]
    fn merge_equals_single_tracker() {
        let mut whole = WindowedTail::new(1_000);
        let mut a = WindowedTail::new(1_000);
        let mut b = WindowedTail::new(1_000);
        for i in 0..40u64 {
            let (at, lat) = (i * 137 % 5_000, 100 + i * 31);
            whole.record(at, lat);
            if i % 2 == 0 {
                a.record(at, lat);
            } else {
                b.record(at, lat);
            }
        }
        a.merge(&b);
        assert_eq!(a.allocated_windows(), whole.allocated_windows());
        for idx in 0..whole.allocated_windows() {
            let (m, w) = (a.histogram(idx).unwrap(), whole.histogram(idx).unwrap());
            assert_eq!(m.count(), w.count(), "window {idx} count");
            assert_eq!(
                m.percentile_ms(0.99),
                w.percentile_ms(0.99),
                "window {idx} p99"
            );
        }
        assert_eq!(a.worst_p99_ms(), whole.worst_p99_ms());
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn merge_rejects_mismatched_windows() {
        let mut a = WindowedTail::new(1_000);
        a.merge(&WindowedTail::new(2_000));
    }

    #[test]
    fn degraded_windows_split_from_healthy_ones() {
        let mut t = WindowedTail::new(1_000);
        for i in 0..50 {
            t.record(i * 10, 100); // window 0: healthy, 100 ns
        }
        for i in 0..50 {
            t.record(2_000 + i * 10, 50_000); // window 2: outage spike, 50 µs
        }
        for i in 0..50 {
            t.record(5_000 + i * 10, 200); // window 5: healthy again
        }
        let outage = [(2_100u64, 2_900u64)];
        let degraded = t.worst_percentile_ms_within(0.99, 1, &outage);
        let healthy = t.worst_percentile_ms_outside(0.99, 1, &outage);
        assert!(degraded > 0.04, "{degraded}");
        assert!(healthy < 0.001, "{healthy}");
        // An interval touching no populated window yields zero.
        assert_eq!(
            t.worst_percentile_ms_within(0.99, 1, &[(10_000, 11_000)]),
            0.0
        );
        // No interval at all: everything is healthy.
        assert_eq!(t.worst_percentile_ms_within(0.99, 1, &[]), 0.0);
        assert_eq!(
            t.worst_percentile_ms_outside(0.99, 1, &[]),
            t.worst_p99_ms()
        );
    }
}
