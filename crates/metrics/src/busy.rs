//! Time-weighted busy/idle accounting for partitions and servers.

use std::fmt;

/// Accumulates busy time for one resource (a GPU partition, the frontend…)
/// and reports utilization over an observation window.
///
/// # Examples
///
/// ```
/// use server_metrics::BusyTracker;
///
/// let mut t = BusyTracker::new();
/// t.add_busy_ns(250);
/// t.add_busy_ns(250);
/// assert!((t.utilization(1_000) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BusyTracker {
    busy_ns: u64,
    intervals: u64,
}

impl BusyTracker {
    /// Creates a tracker with no accumulated busy time.
    #[must_use]
    pub fn new() -> Self {
        BusyTracker {
            busy_ns: 0,
            intervals: 0,
        }
    }

    /// Adds one busy interval of the given length.
    pub fn add_busy_ns(&mut self, ns: u64) {
        self.busy_ns = self.busy_ns.saturating_add(ns);
        self.intervals += 1;
    }

    /// Returns `ns` of previously added busy time (saturating at zero,
    /// leaving the interval count untouched). Callers that charge an
    /// execution up front use this when the execution is cut short — a
    /// fault killing a partition mid-query refunds the unserved remainder.
    pub fn remove_busy_ns(&mut self, ns: u64) {
        self.busy_ns = self.busy_ns.saturating_sub(ns);
    }

    /// Total busy nanoseconds accumulated.
    #[must_use]
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Number of busy intervals recorded.
    #[must_use]
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Busy fraction over a window of `window_ns` (clamped to [0, 1];
    /// 0 for an empty window).
    #[must_use]
    pub fn utilization(&self, window_ns: u64) -> f64 {
        if window_ns == 0 {
            return 0.0;
        }
        (self.busy_ns as f64 / window_ns as f64).min(1.0)
    }

    /// Resets accumulated state.
    pub fn reset(&mut self) {
        *self = BusyTracker::new();
    }
}

impl fmt::Display for BusyTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms busy over {} intervals",
            self.busy_ns as f64 / 1e6,
            self.intervals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_busy_time() {
        let mut t = BusyTracker::new();
        t.add_busy_ns(100);
        t.add_busy_ns(300);
        assert_eq!(t.busy_ns(), 400);
        assert_eq!(t.intervals(), 2);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut t = BusyTracker::new();
        t.add_busy_ns(2_000);
        assert_eq!(t.utilization(1_000), 1.0);
    }

    #[test]
    fn zero_window_is_zero_not_nan() {
        let t = BusyTracker::new();
        assert_eq!(t.utilization(0), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = BusyTracker::new();
        t.add_busy_ns(5);
        t.reset();
        assert_eq!(t.busy_ns(), 0);
        assert_eq!(t.intervals(), 0);
    }

    #[test]
    fn remove_refunds_busy_time_saturating() {
        let mut t = BusyTracker::new();
        t.add_busy_ns(1_000);
        t.remove_busy_ns(400);
        assert_eq!(t.busy_ns(), 600);
        assert_eq!(t.intervals(), 1, "refunds keep the interval count");
        t.remove_busy_ns(10_000);
        assert_eq!(t.busy_ns(), 0, "refund saturates at zero");
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut t = BusyTracker::new();
        t.add_busy_ns(u64::MAX);
        t.add_busy_ns(10);
        assert_eq!(t.busy_ns(), u64::MAX);
    }

    #[test]
    fn display_is_nonempty() {
        let t = BusyTracker::new();
        assert!(t.to_string().contains("intervals"));
    }
}
