//! End-to-end latency recording with percentile queries.

use std::fmt;

/// Collects per-query latencies (in nanoseconds) and answers the statistics
/// the evaluation plots: p95 tail latency, means, maxima and SLA-violation
/// rates.
///
/// # Examples
///
/// ```
/// use server_metrics::LatencyRecorder;
///
/// let mut rec = LatencyRecorder::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     rec.record(ms * 1_000_000);
/// }
/// assert_eq!(rec.count(), 5);
/// assert!(rec.percentile_ms(0.95) >= 4.0);
/// assert_eq!(rec.violations(10 * 1_000_000), 1); // only the 100 ms query
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        LatencyRecorder {
            samples_ns: Vec::new(),
        }
    }

    /// Records one latency sample in nanoseconds.
    pub fn record(&mut self, latency_ns: u64) {
        self.samples_ns.push(latency_ns);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples_ns.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// The raw samples, in arrival order (nanoseconds).
    #[must_use]
    pub fn samples_ns(&self) -> &[u64] {
        &self.samples_ns
    }

    /// Mean latency in milliseconds (0 if empty).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let total: u128 = self.samples_ns.iter().map(|&n| n as u128).sum();
        total as f64 / self.samples_ns.len() as f64 / 1e6
    }

    /// Maximum latency in milliseconds (0 if empty).
    #[must_use]
    pub fn max_ms(&self) -> f64 {
        self.samples_ns
            .iter()
            .max()
            .map_or(0.0, |&n| n as f64 / 1e6)
    }

    /// The `p`-quantile latency in nanoseconds using the nearest-rank
    /// method (0 if empty).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "quantile must be within [0, 1]");
        if self.samples_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The `p`-quantile latency in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.percentile_ns(p) as f64 / 1e6
    }

    /// The paper's headline metric: 95th-percentile tail latency, ms.
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.percentile_ms(0.95)
    }

    /// Number of samples exceeding `sla_ns`.
    #[must_use]
    pub fn violations(&self, sla_ns: u64) -> usize {
        self.samples_ns.iter().filter(|&&s| s > sla_ns).count()
    }

    /// Fraction of samples exceeding `sla_ns` (0 if empty).
    #[must_use]
    pub fn violation_rate(&self, sla_ns: u64) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        self.violations(sla_ns) as f64 / self.samples_ns.len() as f64
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples_ns.extend_from_slice(&other.samples_ns);
    }
}

impl fmt::Display for LatencyRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples, mean {:.3} ms, p95 {:.3} ms",
            self.count(),
            self.mean_ms(),
            self.p95_ms()
        )
    }
}

impl Extend<u64> for LatencyRecorder {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        self.samples_ns.extend(iter);
    }
}

impl FromIterator<u64> for LatencyRecorder {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        LatencyRecorder {
            samples_ns: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_reports_zeros() {
        let rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.mean_ms(), 0.0);
        assert_eq!(rec.max_ms(), 0.0);
        assert_eq!(rec.percentile_ns(0.95), 0);
        assert_eq!(rec.violation_rate(1), 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let rec: LatencyRecorder = (1..=100u64).collect();
        assert_eq!(rec.percentile_ns(0.95), 95);
        assert_eq!(rec.percentile_ns(0.50), 50);
        assert_eq!(rec.percentile_ns(1.0), 100);
        assert_eq!(rec.percentile_ns(0.0), 1);
    }

    #[test]
    fn percentile_order_insensitive() {
        let mut rec = LatencyRecorder::new();
        for v in [50u64, 10, 90, 30, 70] {
            rec.record(v);
        }
        assert_eq!(rec.percentile_ns(0.5), 50);
    }

    #[test]
    fn mean_and_max() {
        let rec: LatencyRecorder = [1_000_000u64, 3_000_000].into_iter().collect();
        assert!((rec.mean_ms() - 2.0).abs() < 1e-9);
        assert!((rec.max_ms() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn violations_count_strictly_above_sla() {
        let rec: LatencyRecorder = [5u64, 10, 15].into_iter().collect();
        assert_eq!(rec.violations(10), 1);
        assert!((rec.violation_rate(10) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a: LatencyRecorder = [1u64, 2].into_iter().collect();
        let b: LatencyRecorder = [3u64].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    #[should_panic(expected = "quantile must be within")]
    fn out_of_range_quantile_panics() {
        let rec = LatencyRecorder::new();
        let _ = rec.percentile_ns(1.5);
    }

    #[test]
    fn mean_does_not_overflow_on_large_samples() {
        let rec: LatencyRecorder = std::iter::repeat_n(u64::MAX / 2, 8).collect();
        assert!(rec.mean_ms() > 0.0);
    }

    #[test]
    fn display_is_informative() {
        let rec: LatencyRecorder = [2_000_000u64].into_iter().collect();
        let s = rec.to_string();
        assert!(s.contains("1 samples"));
    }
}
