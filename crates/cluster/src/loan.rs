//! Aryl-style capacity loaning between a low-priority batch pool and the
//! serving shards.
//!
//! Aryl (arXiv:2202.07896) observed that a cluster serving
//! latency-critical inference next to preemptible batch work can *loan*
//! idle batch GPUs to the serving pool during load spikes and take them
//! back when the spike passes — capacity elasticity one level above MIG
//! reslicing. [`LoanPolicy`] brings that loop to the cluster simulator: a
//! cluster-level [`DriftDetector`] watches every shard's arrival stream
//! (one detector lane per shard × model); when a window closes with
//! significant drift, the controller re-estimates each shard's demand in
//! full-GPU equivalents and moves whole GPUs between the batch pool and
//! the shards. A borrowed GPU joins the shard's [`GpcBudget`] and the
//! shard re-plans onto it through the ordinary `plan_diff` + quiesce +
//! reslice machinery; a reclaim shrinks the budget the same way, so
//! in-flight queries drain before the GPU leaves — never stranding work.

use des_engine::SimTime;
use inference_workload::DriftDetectorConfig;
use mig_gpu::ResliceCostModel;
use paris_core::{GpcBudget, ReconfigMode};

/// How the loan controller estimates a shard's demand in full-GPU
/// equivalents — the number [`LoanPolicy::target_gpus`] steers against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoanDemandModel {
    /// Analytical (the original estimator, and the default): each model's
    /// observed arrival rate divided by the throughput one GPU's worth of
    /// the shard's *live* partition mix delivers at the observed batch
    /// mix. Captures offered demand even past saturation, but inherits
    /// any error in the capacity model.
    #[default]
    PlannedEfficiency,
    /// Measured: the shard's GPC-weighted busy fraction since the last
    /// loan decision (`DispatchCore::busy_gpc_ns` deltas over wall time,
    /// normalized to whole GPUs). No model in the loop — this is what the
    /// hardware actually did — but it measures *served* work, so it
    /// saturates near the shard's current GPU count under overload; the
    /// [`overload_ratio`](LoanPolicy::overload_ratio) headroom (< 1) is
    /// what keeps borrows triggering there.
    MeasuredBusy,
}

/// When and how the cluster moves whole GPUs between the batch pool and
/// serving shards.
#[derive(Debug, Clone)]
pub struct LoanPolicy {
    /// GPUs the batch pool can lend (the low-priority pool's size).
    pub pool_gpus: usize,
    /// The cluster-level drift trigger: loans are only considered when a
    /// detection window closes with statistically significant drift, so a
    /// noisy minute cannot thrash GPUs back and forth.
    pub detector: DriftDetectorConfig,
    /// Target utilization headroom: a shard borrows when its estimated
    /// demand (full-GPU equivalents) exceeds `overload_ratio ×` its GPU
    /// count, and borrows enough to push demand back under that line.
    pub overload_ratio: f64,
    /// Reclaim hysteresis: loaned GPUs return only once demand falls below
    /// `underload_ratio ×` the GPU count. Must stay well under
    /// [`overload_ratio`](Self::overload_ratio) or the controller
    /// oscillates.
    pub underload_ratio: f64,
    /// Prices the reslice of each loan-triggered re-plan, plus the
    /// per-GPU handover charge ([`ResliceCostModel::gpu_handover_ns`]).
    /// A transfer whose re-plan lands on the *identical* layout charges
    /// nothing: the moved GPU is not used by any serving instance, so
    /// handing it over interrupts nothing.
    pub cost: ResliceCostModel,
    /// How each loan-triggered re-plan stages its edits: one GPU at a time
    /// ([`ReconfigMode::Rolling`], the default — bounding the shard's
    /// capacity dip during the handover) or one combined outage
    /// ([`ReconfigMode::AllAtOnce`], kept for ablations).
    pub mode: ReconfigMode,
    /// How shard demand is estimated (analytical by default; see
    /// [`LoanDemandModel`]).
    pub demand_model: LoanDemandModel,
}

impl LoanPolicy {
    /// A policy lending up to `pool_gpus` GPUs, deciding on `window_s`
    /// second windows, with 80 % / 40 % overload/underload thresholds, the
    /// A100 reslice cost model and rolling staging (the workspace
    /// default).
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive and finite.
    #[must_use]
    pub fn new(pool_gpus: usize, window_s: f64) -> Self {
        LoanPolicy {
            pool_gpus,
            detector: DriftDetectorConfig::new(window_s),
            overload_ratio: 0.8,
            underload_ratio: 0.4,
            cost: ResliceCostModel::a100_default(),
            mode: ReconfigMode::Rolling,
            demand_model: LoanDemandModel::default(),
        }
    }

    /// Overrides the drift detector configuration.
    #[must_use]
    pub fn with_detector(mut self, detector: DriftDetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Overrides the overload/underload thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < underload < overload` and both are finite.
    #[must_use]
    pub fn with_thresholds(mut self, overload: f64, underload: f64) -> Self {
        assert!(
            underload.is_finite()
                && overload.is_finite()
                && 0.0 < underload
                && underload < overload,
            "need 0 < underload < overload"
        );
        self.overload_ratio = overload;
        self.underload_ratio = underload;
        self
    }

    /// Overrides the reslice cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: ResliceCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the reconfiguration staging mode of loan-triggered
    /// re-plans.
    #[must_use]
    pub fn with_mode(mut self, mode: ReconfigMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the demand estimator (measured busy fractions instead of
    /// the analytical capacity model).
    #[must_use]
    pub fn with_demand_model(mut self, demand_model: LoanDemandModel) -> Self {
        self.demand_model = demand_model;
        self
    }

    /// The GPU count this policy would steer a shard to, given its
    /// estimated demand (full-GPU equivalents), its base (owned) GPUs, its
    /// current GPUs and the pool's free GPUs. Pure — the decision rule the
    /// cluster applies per shard at every triggered window:
    ///
    /// * overloaded (`demand > overload_ratio × current`): grow toward
    ///   `⌈demand / overload_ratio⌉`, bounded by what the pool has;
    /// * sustained underload (`demand < underload_ratio × current` while
    ///   holding loans): shrink back toward the same target, never below
    ///   the shard's own GPUs;
    /// * otherwise: hold (the hysteresis band).
    #[must_use]
    pub fn target_gpus(
        &self,
        demand_gpus: f64,
        base: usize,
        current: usize,
        pool_free: usize,
    ) -> usize {
        debug_assert!(current >= base, "a shard never drops below its own GPUs");
        let need = (demand_gpus / self.overload_ratio).ceil().max(1.0) as usize;
        if demand_gpus > self.overload_ratio * current as f64 {
            current + need.saturating_sub(current).min(pool_free)
        } else if current > base && demand_gpus < self.underload_ratio * current as f64 {
            need.clamp(base, current)
        } else {
            current
        }
    }
}

/// Inflates a [`LoanDemandModel::MeasuredBusy`] demand estimate for
/// degraded capacity: `measured_gpus` is the shard's busy-silicon
/// measurement in GPU equivalents, `live_gpus` its surviving GPU count,
/// and `effective_gpus` the degrade-discounted capacity those GPUs
/// actually deliver (see
/// [`degraded_capacity_gpus`](crate::degraded_capacity_gpus)). Returns the
/// demand in **healthy**-GPU equivalents: `measured × live / effective`.
///
/// A throttled GPU spends more wall-clock busy per unit of useful work, so
/// its raw busy fraction *understates* nothing — but the loan controller
/// compares demand against GPU counts, and a 4×-throttled shard that
/// measures 2.0 busy GPUs really needs `2.0 × 4 / 3.25 ≈ 2.46` healthy
/// GPUs to shed the same load. Without the inflation the shard "looks
/// busy, not small" (ISSUE 7) and the pool never backfills the throttle.
///
/// Degenerates to the identity when nothing is degraded
/// (`effective == live`) and guards the empty shard (`live == 0` or a
/// non-positive effective capacity) by passing the measurement through.
#[must_use]
pub fn degrade_inflated_demand(measured_gpus: f64, live_gpus: usize, effective_gpus: f64) -> f64 {
    if live_gpus == 0 || effective_gpus <= 0.0 {
        return measured_gpus;
    }
    measured_gpus * live_gpus as f64 / effective_gpus
}

/// One completed GPU transfer between the batch pool and a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoanEvent {
    /// When the transfer was decided (the shard's re-plan onto the new
    /// budget starts here; drain + reslice play out after).
    pub at: SimTime,
    /// The borrowing/returning shard.
    pub shard: usize,
    /// GPUs moved: positive = borrowed from the pool, negative = returned.
    pub gpus_delta: i64,
    /// Pool GPUs still lendable after the transfer.
    pub pool_free_after: usize,
}

/// Book-keeping for one run's loans: who holds what, and what the batch
/// pool has left.
#[derive(Debug, Clone)]
pub(crate) struct LoanLedger {
    pub(crate) pool_free: usize,
    pub(crate) base: Vec<GpcBudget>,
    pub(crate) loaned: Vec<usize>,
}

impl LoanLedger {
    pub(crate) fn new(base: Vec<GpcBudget>, pool_gpus: usize) -> Self {
        let n = base.len();
        LoanLedger {
            pool_free: pool_gpus,
            base,
            loaned: vec![0; n],
        }
    }

    /// The budget shard `s` holds with `loans` borrowed GPUs: every loaned
    /// GPU arrives whole (all 7 GPCs), on top of the shard's own share.
    pub(crate) fn budget_with_loans(&self, s: usize, loans: usize) -> GpcBudget {
        let b = self.base[s];
        GpcBudget::new(
            b.total_gpcs + loans * mig_gpu::COMPUTE_SLICES,
            b.num_gpus + loans,
        )
    }

    /// Applies a transfer of `delta` GPUs to shard `s` (positive borrows
    /// from the pool), returning the shard's new budget.
    pub(crate) fn transfer(&mut self, s: usize, delta: i64) -> GpcBudget {
        if delta >= 0 {
            let d = delta as usize;
            debug_assert!(d <= self.pool_free);
            self.pool_free -= d;
            self.loaned[s] += d;
        } else {
            let d = (-delta) as usize;
            debug_assert!(d <= self.loaned[s]);
            self.pool_free += d;
            self.loaned[s] -= d;
        }
        self.budget_with_loans(s, self.loaned[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> LoanPolicy {
        LoanPolicy::new(4, 0.5)
    }

    #[test]
    fn overload_borrows_up_to_the_pool() {
        let p = policy();
        // Demand 4.0 GPU-equivalents on 2 GPUs: wants ceil(4/0.8)=5, pool
        // has 4 → grow to 5.
        assert_eq!(p.target_gpus(4.0, 2, 2, 4), 5);
        // Pool can only cover part of the gap.
        assert_eq!(p.target_gpus(4.0, 2, 2, 1), 3);
        // Empty pool: hold.
        assert_eq!(p.target_gpus(4.0, 2, 2, 0), 2);
    }

    #[test]
    fn underload_returns_but_never_below_base() {
        let p = policy();
        // 5 GPUs (2 base + 3 loaned), demand collapsed to 0.4 equivalents:
        // target ceil(0.4/0.8)=1, clamped to base 2.
        assert_eq!(p.target_gpus(0.4, 2, 5, 1), 2);
        // Moderate demand inside the hysteresis band: hold.
        assert_eq!(p.target_gpus(3.0, 2, 5, 1), 5);
        // No loans held: underload never shrinks an unloaned shard.
        assert_eq!(p.target_gpus(0.1, 2, 2, 4), 2);
    }

    #[test]
    fn ledger_conserves_gpus() {
        let base = vec![GpcBudget::new(14, 2), GpcBudget::new(14, 2)];
        let mut ledger = LoanLedger::new(base, 3);
        let b = ledger.transfer(0, 2);
        assert_eq!(b.num_gpus, 4);
        assert_eq!(b.total_gpcs, 14 + 2 * 7);
        assert_eq!(ledger.pool_free, 1);
        let b = ledger.transfer(0, -2);
        assert_eq!(b.num_gpus, 2);
        assert_eq!(ledger.pool_free, 3);
        assert_eq!(ledger.loaned, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "underload < overload")]
    fn inverted_thresholds_panic() {
        let _ = policy().with_thresholds(0.3, 0.6);
    }

    #[test]
    fn degrade_inflation_converts_busy_to_healthy_gpus() {
        // Satellite contract: 4 live GPUs, one throttled 4× → 3.25
        // effective. A 2.0-GPU busy measurement inflates to the healthy
        // GPUs the load actually needs.
        let effective = crate::shed::degraded_capacity_gpus(4, [4000]);
        let inflated = degrade_inflated_demand(2.0, 4, effective);
        assert!(
            (inflated - 2.0 * 4.0 / 3.25).abs() < 1e-12,
            "expected ≈2.4615, got {inflated}"
        );
        // Healthy shard: identity.
        assert_eq!(degrade_inflated_demand(2.0, 4, 4.0), 2.0);
        // Guards: empty or fully-degraded shards pass the measurement
        // through instead of dividing by zero.
        assert_eq!(degrade_inflated_demand(2.0, 0, 0.0), 2.0);
        assert_eq!(degrade_inflated_demand(2.0, 4, 0.0), 2.0);
    }

    #[test]
    fn inflated_demand_crosses_the_borrow_threshold() {
        // End-to-end: demand that holds steady on a healthy 4-GPU shard
        // triggers a borrow once a 4× throttle shrinks effective capacity
        // — the "looks busy, not small" fix in decision terms.
        let p = policy(); // overload at 0.8 × current
        let measured = 3.1; // busy GPUs, under 0.8 × 4 = 3.2 → hold
        assert_eq!(p.target_gpus(measured, 4, 4, 4), 4);
        let effective = crate::shed::degraded_capacity_gpus(4, [4000]);
        let inflated = degrade_inflated_demand(measured, 4, effective);
        assert!(inflated > 3.2, "inflated {inflated} must cross the wall");
        assert!(p.target_gpus(inflated, 4, 4, 4) > 4);
    }
}
