//! Routing tagged arrivals to shards.
//!
//! The cluster frontend sees one merged arrival stream; a [`RouterPolicy`]
//! decides, per query and *before* the shard's serial frontend stamps it,
//! which shard serves it. All three policies are deterministic — two runs
//! of the same cluster over the same trace route identically.

/// Which shard-selection policy the cluster frontend runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Static hash partitioning: shard = `hash(arrival index) % shards`.
    /// Load-oblivious — the baseline every production gateway starts from.
    StaticHash,
    /// Join-shortest-queue: the shard with the fewest outstanding
    /// (offered-but-uncompleted) queries takes the arrival; ties go to the
    /// lowest shard index.
    JoinShortestQueue,
    /// Smooth weighted round-robin over each shard's *planned capacity*
    /// (its [`capacity_hint_qps`]) — load-oblivious like [`StaticHash`],
    /// but aware that a 6-GPU shard should take three times the traffic of
    /// a 2-GPU shard.
    ///
    /// [`capacity_hint_qps`]: inference_server::MultiModelServer::capacity_hint_qps
    /// [`StaticHash`]: Self::StaticHash
    WeightedByCapacity,
}

/// One run's mutable routing state.
#[derive(Debug, Clone)]
pub(crate) struct RouterState {
    policy: RouterPolicy,
    /// Arrival counter feeding the static hash.
    counter: u64,
    /// Smooth-WRR credit accumulators.
    credit: Vec<f64>,
    weights: Vec<f64>,
    weight_sum: f64,
}

/// SplitMix64 — the same cheap deterministic mixer the treap priorities
/// use; avalanches the arrival counter so static hashing does not stripe.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RouterState {
    pub(crate) fn new(policy: RouterPolicy, capacity_weights: Vec<f64>) -> Self {
        debug_assert!(capacity_weights.iter().all(|w| w.is_finite() && *w > 0.0));
        let weight_sum = capacity_weights.iter().sum();
        RouterState {
            policy,
            counter: 0,
            credit: vec![0.0; capacity_weights.len()],
            weights: capacity_weights,
            weight_sum,
        }
    }

    /// Picks the shard for the next arrival. `outstanding[s]` is shard
    /// `s`'s offered-but-uncompleted query count at this instant.
    pub(crate) fn pick(&mut self, outstanding: &[u64]) -> usize {
        let n = self.weights.len();
        debug_assert_eq!(outstanding.len(), n);
        match self.policy {
            RouterPolicy::StaticHash => {
                let h = splitmix64(self.counter);
                self.counter += 1;
                (h % n as u64) as usize
            }
            RouterPolicy::JoinShortestQueue => outstanding
                .iter()
                .enumerate()
                .min_by_key(|&(s, &load)| (load, s))
                .map(|(s, _)| s)
                .expect("cluster has at least one shard"),
            RouterPolicy::WeightedByCapacity => {
                // Smooth WRR: every shard earns credit proportional to its
                // weight; the richest shard serves and pays the pot back.
                let mut winner = 0;
                for s in 0..n {
                    self.credit[s] += self.weights[s];
                    if self.credit[s] > self.credit[winner] {
                        winner = s;
                    }
                }
                self.credit[winner] -= self.weight_sum;
                winner
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_hash_spreads_and_reproduces() {
        let mut a = RouterState::new(RouterPolicy::StaticHash, vec![1.0; 4]);
        let mut b = RouterState::new(RouterPolicy::StaticHash, vec![1.0; 4]);
        let outstanding = [0u64; 4];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let s = a.pick(&outstanding);
            assert_eq!(s, b.pick(&outstanding), "deterministic");
            counts[s] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "roughly uniform: {counts:?}");
        }
    }

    #[test]
    fn jsq_picks_least_loaded_lowest_index() {
        let mut r = RouterState::new(RouterPolicy::JoinShortestQueue, vec![1.0; 3]);
        assert_eq!(r.pick(&[5, 2, 9]), 1);
        assert_eq!(r.pick(&[4, 4, 9]), 0, "ties go to the lowest index");
        assert_eq!(r.pick(&[4, 3, 3]), 1);
    }

    #[test]
    fn weighted_round_robin_tracks_capacity_ratio() {
        let mut r = RouterState::new(RouterPolicy::WeightedByCapacity, vec![3.0, 1.0]);
        let outstanding = [0u64; 2];
        let picks: Vec<usize> = (0..8).map(|_| r.pick(&outstanding)).collect();
        let to_heavy = picks.iter().filter(|&&s| s == 0).count();
        assert_eq!(to_heavy, 6, "3:1 weights give 6 of 8 to shard 0: {picks:?}");
        // Smooth: never more than a couple of consecutive repeats of the
        // light shard.
        assert!(picks.windows(2).any(|w| w[0] != w[1]));
    }
}
