//! Routing tagged arrivals to shards.
//!
//! The cluster frontend sees one merged arrival stream; a [`RouterPolicy`]
//! decides, per query and *before* the shard's serial frontend stamps it,
//! which shard serves it. All three policies are deterministic — two runs
//! of the same cluster over the same trace route identically.

/// Which shard-selection policy the cluster frontend runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Static hash partitioning: shard = `hash(arrival index) % shards`.
    /// Load-oblivious — the baseline every production gateway starts from.
    StaticHash,
    /// Join-shortest-queue: the shard with the fewest outstanding
    /// (offered-but-uncompleted) queries takes the arrival; ties go to the
    /// lowest shard index.
    JoinShortestQueue,
    /// Smooth weighted round-robin over each shard's *planned capacity*
    /// (its [`capacity_hint_qps`]) — load-oblivious like [`StaticHash`],
    /// but aware that a 6-GPU shard should take three times the traffic of
    /// a 2-GPU shard.
    ///
    /// [`capacity_hint_qps`]: inference_server::MultiModelServer::capacity_hint_qps
    /// [`StaticHash`]: Self::StaticHash
    WeightedByCapacity,
}

/// One run's mutable routing state.
#[derive(Debug, Clone)]
pub(crate) struct RouterState {
    policy: RouterPolicy,
    /// Arrival counter feeding the static hash.
    counter: u64,
    /// Smooth-WRR credit accumulators.
    credit: Vec<f64>,
    weights: Vec<f64>,
}

/// SplitMix64 — the same cheap deterministic mixer the treap priorities
/// use; avalanches the arrival counter so static hashing does not stripe.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RouterState {
    pub(crate) fn new(policy: RouterPolicy, capacity_weights: Vec<f64>) -> Self {
        debug_assert!(capacity_weights.iter().all(|w| w.is_finite() && *w > 0.0));
        RouterState {
            policy,
            counter: 0,
            credit: vec![0.0; capacity_weights.len()],
            weights: capacity_weights,
        }
    }

    /// Picks the shard for the next arrival. `outstanding[s]` is shard
    /// `s`'s offered-but-uncompleted query count at this instant;
    /// `alive[s]` is its liveness — failed shards are excluded from every
    /// policy. A fully dead fleet routes as if everyone were alive (the
    /// query must land somewhere; it waits out the outage in the shard).
    /// With every shard alive each policy is bit-for-bit its historical
    /// self.
    pub(crate) fn pick(&mut self, outstanding: &[u64], alive: &[bool]) -> usize {
        let n = self.weights.len();
        debug_assert_eq!(outstanding.len(), n);
        debug_assert_eq!(alive.len(), n);
        let any_alive = alive.iter().any(|&a| a);
        let live = |s: usize| !any_alive || alive[s];
        match self.policy {
            RouterPolicy::StaticHash => {
                let h = splitmix64(self.counter);
                self.counter += 1;
                let count = (0..n).filter(|&s| live(s)).count() as u64;
                let k = (h % count) as usize;
                (0..n).filter(|&s| live(s)).nth(k).expect("k < live count")
            }
            RouterPolicy::JoinShortestQueue => outstanding
                .iter()
                .enumerate()
                .filter(|&(s, _)| live(s))
                .min_by_key(|&(s, &load)| (load, s))
                .map(|(s, _)| s)
                .expect("at least one live shard"),
            RouterPolicy::WeightedByCapacity => {
                // Smooth WRR: every live shard earns credit proportional
                // to its weight; the richest serves and pays the pot back.
                // Dead shards neither earn nor compete — their credit
                // freezes until repair.
                let mut winner: Option<usize> = None;
                let mut pot = 0.0;
                for s in 0..n {
                    if !live(s) {
                        continue;
                    }
                    self.credit[s] += self.weights[s];
                    pot += self.weights[s];
                    match winner {
                        Some(w) if self.credit[s] <= self.credit[w] => {}
                        _ => winner = Some(s),
                    }
                }
                let w = winner.expect("at least one live shard");
                self.credit[w] -= pot;
                w
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_hash_spreads_and_reproduces() {
        let mut a = RouterState::new(RouterPolicy::StaticHash, vec![1.0; 4]);
        let mut b = RouterState::new(RouterPolicy::StaticHash, vec![1.0; 4]);
        let outstanding = [0u64; 4];
        let alive = [true; 4];
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            let s = a.pick(&outstanding, &alive);
            assert_eq!(s, b.pick(&outstanding, &alive), "deterministic");
            counts[s] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "roughly uniform: {counts:?}");
        }
    }

    #[test]
    fn jsq_picks_least_loaded_lowest_index() {
        let mut r = RouterState::new(RouterPolicy::JoinShortestQueue, vec![1.0; 3]);
        let alive = [true; 3];
        assert_eq!(r.pick(&[5, 2, 9], &alive), 1);
        assert_eq!(r.pick(&[4, 4, 9], &alive), 0, "ties go to the lowest index");
        assert_eq!(r.pick(&[4, 3, 3], &alive), 1);
    }

    #[test]
    fn weighted_round_robin_tracks_capacity_ratio() {
        let mut r = RouterState::new(RouterPolicy::WeightedByCapacity, vec![3.0, 1.0]);
        let outstanding = [0u64; 2];
        let alive = [true; 2];
        let picks: Vec<usize> = (0..8).map(|_| r.pick(&outstanding, &alive)).collect();
        let to_heavy = picks.iter().filter(|&&s| s == 0).count();
        assert_eq!(to_heavy, 6, "3:1 weights give 6 of 8 to shard 0: {picks:?}");
        // Smooth: never more than a couple of consecutive repeats of the
        // light shard.
        assert!(picks.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn every_policy_excludes_dead_shards() {
        let dead_mid = [true, false, true];
        let mut hash = RouterState::new(RouterPolicy::StaticHash, vec![1.0; 3]);
        for _ in 0..100 {
            assert_ne!(hash.pick(&[0; 3], &dead_mid), 1);
        }
        let mut jsq = RouterState::new(RouterPolicy::JoinShortestQueue, vec![1.0; 3]);
        // Shard 1 is emptiest but dead.
        assert_eq!(jsq.pick(&[5, 0, 3], &dead_mid), 2);
        let mut wrr = RouterState::new(RouterPolicy::WeightedByCapacity, vec![1.0, 10.0, 1.0]);
        for _ in 0..20 {
            assert_ne!(wrr.pick(&[0; 3], &dead_mid), 1);
        }
    }

    #[test]
    fn fully_dead_fleet_falls_back_to_all_shards() {
        let dead = [false, false];
        let mut jsq = RouterState::new(RouterPolicy::JoinShortestQueue, vec![1.0; 2]);
        assert_eq!(jsq.pick(&[3, 1], &dead), 1, "routes as if all were alive");
        let mut hash = RouterState::new(RouterPolicy::StaticHash, vec![1.0; 2]);
        let mut seen = [false; 2];
        for _ in 0..50 {
            seen[hash.pick(&[0; 2], &dead)] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
