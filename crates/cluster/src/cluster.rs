//! The cluster: N shards behind a router, plus capacity loaning, inside
//! one shared DES.

use std::collections::VecDeque;

use des_engine::{SimDuration, SimTime, Simulation};
use inference_server::{
    MultiModelServer, MultiRunReport, ReplanRequest, ReportDetail, ShardEngine, ShardEvent,
};
use inference_workload::{BatchDistribution, DriftDetector, TaggedQuerySpec};
use mig_gpu::{ProfileSize, COMPUTE_SLICES};
use paris_core::{pack_gpus, GpcBudget};
use server_metrics::LatencyHistogram;

use crate::faults::{FaultEvent, FaultTimeline};
use crate::loan::{LoanDemandModel, LoanEvent, LoanLedger, LoanPolicy};
use crate::router::{RouterPolicy, RouterState};
use crate::shed::ShedPolicy;

/// One arrival with an optional shard pin: `Some(shard)` queries go to
/// that shard while it is alive (shard-tagged skewed traces, per-query
/// affinity) and fall back to the router when it is not; `None` queries
/// are routed by the [`RouterPolicy`] as always.
pub type PinnedQuery = (Option<usize>, TaggedQuerySpec);

/// One fault event a run applied, with what it ripped loose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// When the event fired.
    pub at: SimTime,
    /// What happened.
    pub event: FaultEvent,
    /// Queries the event pulled off killed instances and requeued
    /// (non-zero only for [`FaultEvent::GpuFail`] hitting busy instances).
    pub requeued: u64,
}

/// A multi-server inference cluster: each *shard* is a full
/// [`MultiModelServer`] (its own GPC budget, PARIS-planned groups, per-model
/// schedulers, optional drift re-planning), and the cluster stacks N of
/// them behind a [`RouterPolicy`] inside **one** discrete-event simulation,
/// optionally lending batch-pool GPUs to overloaded shards
/// ([`LoanPolicy`]).
///
/// # Degeneration contract
///
/// A cluster of exactly **one** shard with no loan policy is *bit-for-bit*
/// the shard's own [`MultiModelServer::run_stream`] — same records, same
/// latency samples, same utilization, same reconfigurations — for every
/// router policy (they all have one choice). The property suite enforces
/// this, pinning the cluster layer to the server semantics the PR-2
/// degeneration contract already pins to the single-model fast path.
///
/// # Conservation contract
///
/// No query is dropped or double-served across shard handoffs, loans or
/// reclaims: routing assigns each arrival to exactly one shard, and within
/// a shard the reconfiguration machinery drains quiesced instances and
/// stashes dark-group arrivals. In particular a reclaim that removes a GPU
/// mid-drain never strands a queued query. Unit and property tests enforce
/// this.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_cluster::{Cluster, RouterPolicy};
/// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::{GpcBudget, ProfileTable};
/// use inference_server::{ModelSpec, MultiModelConfig, MultiModelServer};
///
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let dist = BatchDistribution::paper_default();
/// let table = ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
/// let shard = |gpus: usize| {
///     MultiModelServer::new(
///         vec![ModelSpec::new("mobilenet", table.clone(), dist.clone())],
///         GpcBudget::new(gpus * 7, gpus),
///         MultiModelConfig::new(),
///     )
/// };
/// let cluster = Cluster::new(vec![shard(2)?, shard(1)?], RouterPolicy::JoinShortestQueue);
/// let trace = MultiTraceGenerator::new(vec![PhaseSpec::new(0.3, vec![(400.0, dist)])], 7);
/// let report = cluster.run(&trace.generate());
/// assert_eq!(report.completed(), report.routed.iter().sum::<u64>());
/// assert_eq!(report.per_shard.len(), 2);
/// # Ok::<(), paris_core::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    shards: Vec<MultiModelServer>,
    router: RouterPolicy,
    loan: Option<LoanPolicy>,
    shed: Option<ShedPolicy>,
}

impl Cluster {
    /// Creates a cluster over the given shards.
    ///
    /// Every shard must host the same *number* of models (arrivals are
    /// tagged with a model index that must be meaningful on whichever
    /// shard the router picks — shards are replicas of one deployment,
    /// possibly with different capacities).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or the shards disagree on model count.
    #[must_use]
    pub fn new(shards: Vec<MultiModelServer>, router: RouterPolicy) -> Self {
        assert!(!shards.is_empty(), "cluster needs at least one shard");
        let models = shards[0].models().len();
        assert!(
            shards.iter().all(|s| s.models().len() == models),
            "every shard must host the same number of models"
        );
        Cluster {
            shards,
            router,
            loan: None,
            shed: None,
        }
    }

    /// Enables Aryl-style capacity loaning from a batch pool.
    #[must_use]
    pub fn with_loan(mut self, loan: LoanPolicy) -> Self {
        self.loan = Some(loan);
        self
    }

    /// Enables brownout admission control: low-priority-class queries are
    /// rejected at the gateway when the picked shard's projected delay
    /// makes their SLA hopeless (see [`ShedPolicy`]). Models without an
    /// SLA are never shed (there is no budget to protect).
    #[must_use]
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = Some(shed);
        self
    }

    /// The hosted shards.
    #[must_use]
    pub fn shards(&self) -> &[MultiModelServer] {
        &self.shards
    }

    /// The routing policy.
    #[must_use]
    pub fn router(&self) -> RouterPolicy {
        self.router
    }

    /// The loan policy, if loaning is enabled.
    #[must_use]
    pub fn loan(&self) -> Option<&LoanPolicy> {
        self.loan.as_ref()
    }

    /// The brownout shed policy, if admission control is enabled.
    #[must_use]
    pub fn shed(&self) -> Option<&ShedPolicy> {
        self.shed.as_ref()
    }

    /// Simulates the cluster over a materialized tagged trace at the first
    /// shard's configured detail.
    #[must_use]
    pub fn run(&self, trace: &[TaggedQuerySpec]) -> ClusterReport {
        self.run_stream(trace.iter().copied(), self.shards[0].config().detail)
    }

    /// Simulates the cluster over a *streamed* tagged arrival sequence
    /// (ascending arrival times) until every accepted query completes.
    #[must_use]
    pub fn run_stream<I>(&self, arrivals: I, detail: ReportDetail) -> ClusterReport
    where
        I: IntoIterator<Item = TaggedQuerySpec>,
    {
        self.run_scenario(
            arrivals.into_iter().map(|tq| (None, tq)),
            detail,
            &FaultTimeline::empty(),
        )
    }

    /// Simulates the cluster under a fault scenario: a (possibly
    /// shard-pinned, see [`PinnedQuery`]) arrival stream plus a
    /// [`FaultTimeline`] injected into the same DES. GPU failures kill
    /// the instances packed on the failing GPU (their work requeues) and
    /// the shard re-plans onto the survivor budget; shard failures drop
    /// the shard from the routing rotation until repair; with a
    /// [`LoanPolicy`], every fault also triggers an immediate loan
    /// rebalance so the batch pool can backfill lost capacity.
    ///
    /// An **empty timeline with no pins is bit-for-bit
    /// [`run_stream`](Self::run_stream)** — the fault machinery costs
    /// nothing until an event fires; the unit suite pins this.
    #[must_use]
    pub fn run_scenario<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        faults: &FaultTimeline,
    ) -> ClusterReport
    where
        I: IntoIterator<Item = PinnedQuery>,
    {
        CEngine::new(self, detail, arrivals.into_iter(), faults).run()
    }
}

/// Everything measured during one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Each shard's full run report (records, per-model stats,
    /// reconfigurations), shard order.
    pub per_shard: Vec<MultiRunReport>,
    /// Queries the router sent to each shard.
    pub routed: Vec<u64>,
    /// Fleet-wide latency histogram (union of the shard histograms).
    pub histogram: LatencyHistogram,
    /// Time from first arrival to the last completion on any shard.
    pub makespan: SimDuration,
    /// Completed queries across the fleet divided by the makespan.
    pub achieved_qps: f64,
    /// Every GPU transfer between the batch pool and the shards, in order.
    pub loans: Vec<LoanEvent>,
    /// Every fault event the run applied, in order (empty without a
    /// [`FaultTimeline`]).
    pub faults: Vec<FaultRecord>,
    /// Queries of each model rejected at admission by the [`ShedPolicy`]
    /// (all-zero without one). Conservation invariant 10: every offered
    /// query is exactly served-or-shed — `completed() + shed` reconstructs
    /// the offered count, and a shed query never touches `routed` or any
    /// shard queue.
    pub shed_per_model: Vec<u64>,
    /// Opportunity cost of loaning: the integral of loaned-out GPUs over
    /// simulated time (GPU-seconds the batch pool could not use).
    pub loaned_gpu_seconds: f64,
    /// High-water mark of the shared DES event queue:
    /// O(total partitions + peak frontend backlog). Unlike the
    /// single-server engine (strictly O(partitions)), the cluster
    /// materializes admitted-but-undispatched queries as pending events —
    /// the price of routing every arrival against the fleet state at its
    /// own arrival instant (see `CEvent::Route`'s notes in the source).
    pub peak_pending_events: usize,
}

impl ClusterReport {
    /// Total queries completed across the fleet.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.histogram.count()
    }

    /// Fleet-wide p95 tail latency, milliseconds (bucket-accurate).
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.histogram.p95_ms()
    }

    /// The worst per-model exact SLA violation rate across every shard —
    /// the metric a latency-bounded cluster throughput search constrains.
    #[must_use]
    pub fn worst_violation_rate(&self) -> f64 {
        self.per_shard
            .iter()
            .map(MultiRunReport::worst_violation_rate)
            .fold(0.0, f64::max)
    }

    /// The worst p95/SLA ratio across every shard and model (≤ 1 means the
    /// whole fleet met its SLAs).
    #[must_use]
    pub fn worst_p95_sla_ratio(&self) -> f64 {
        self.per_shard
            .iter()
            .flat_map(|r| &r.per_model)
            .filter_map(|m| m.sla_ns.map(|sla| m.p95_ms() / (sla as f64 / 1e6)))
            .fold(0.0, f64::max)
    }

    /// Mid-run reconfigurations across the fleet (drift re-plans plus
    /// loan-triggered re-plans).
    #[must_use]
    pub fn total_reconfigs(&self) -> usize {
        self.per_shard.iter().map(|r| r.reconfigs.len()).sum()
    }

    /// Total queries the shed policy rejected at admission.
    #[must_use]
    pub fn total_shed(&self) -> u64 {
        self.shed_per_model.iter().sum()
    }
}

/// Events of the shared cluster simulation.
#[derive(Debug, Clone, Copy)]
enum CEvent {
    /// One shard's event, stamped with its shard so the shared queue can
    /// route it home. `(time, key)` ordering is the shard's own; equal
    /// keys across shards fall back to the queue's deterministic
    /// insertion order.
    Shard { shard: u32, event: ShardEvent },
    /// One arrival reaching the cluster gateway, fired at **its own
    /// arrival timestamp** (handling it schedules the successor's
    /// `Route`, so the iterator stays one-lookahead lazy). Routing, drift
    /// observation and loan decisions all happen here — at the instant
    /// the query physically exists — so the router can never read queue
    /// state from the simulation's future and a loan can never be
    /// decided before the window-closing arrival.
    ///
    /// The fidelity has a cost the single-server engine does not pay: a
    /// routed query's `Dispatch` is scheduled immediately, so the shared
    /// event queue holds the *frontend backlog* (queries admitted but not
    /// yet dispatched) instead of staying O(partitions). That backlog is
    /// the physical gateway queue — it is materialized here precisely
    /// because each query's routing decision consumed the fleet state at
    /// its own arrival instant.
    Route(PinnedQuery),
    /// One fault-timeline event firing at its scheduled instant.
    Fault(FaultEvent),
}

/// Active slow-GPU fault on one base GPU slot: `(factor_milli, the
/// worker slots it throttled)`.
type ActiveDegrade = (u32, Vec<usize>);

/// One cluster run's mutable state.
struct CEngine<'a, I> {
    cluster: &'a Cluster,
    arrivals: I,
    sim: Simulation<CEvent>,
    engines: Vec<ShardEngine<'a>>,
    router: RouterState,
    /// Cluster-level drift detector: one lane per shard × model, fed at
    /// routing time with the traffic each shard actually receives.
    detector: Option<DriftDetector>,
    ledger: Option<LoanLedger>,
    loans: Vec<LoanEvent>,
    /// Integral bookkeeping for the loaned-GPU opportunity cost.
    loan_out_total: usize,
    loan_since: SimTime,
    loaned_gpu_ns: u128,
    routed: Vec<u64>,
    n_models: usize,
    /// Tie-break key sequence for [`CEvent::Route`] events.
    route_seq: u64,
    /// Reused outstanding-load scratch so routing allocates nothing after
    /// the first arrival.
    scratch: Vec<u64>,
    /// Shard liveness: failed shards leave the routing rotation.
    alive: Vec<bool>,
    /// Per shard, which of its base-budget GPU slots are currently failed.
    failed_gpus: Vec<Vec<bool>>,
    /// Per shard × base GPU slot: the active slow-GPU fault, if any —
    /// `(factor_milli, the worker slots it throttled)`. The victim list is
    /// what the matching [`FaultEvent::GpuRestore`] un-throttles: the
    /// degrade follows the silicon that was hot, not whatever instances a
    /// later re-plan packs onto the slot number.
    degraded: Vec<Vec<Option<ActiveDegrade>>>,
    /// Per-shard planned capacity hints (router weights), reused by the
    /// shed policy's projected-delay estimate.
    cap_hint: Vec<f64>,
    /// Per-model count of queries the shed policy rejected at admission.
    shed_per_model: Vec<u64>,
    /// Shards owing a recovery re-plan that could not run yet (a
    /// reconfiguration was in flight, or the survivor budget cannot host
    /// one GPU per model until a repair); retried after every event of
    /// that shard.
    pending_recovery: Vec<bool>,
    /// Remaining fault events, time order; the head is scheduled into the
    /// DES, the rest wait.
    fault_queue: VecDeque<(SimTime, FaultEvent)>,
    fault_cost: mig_gpu::ResliceCostModel,
    fault_mode: paris_core::ReconfigMode,
    fault_log: Vec<FaultRecord>,
    /// Tie-break key sequence for [`CEvent::Fault`] events.
    fault_seq: u64,
    /// Measured-demand state ([`LoanDemandModel::MeasuredBusy`]): the
    /// measurement window width (the loan detector's window), the next
    /// window boundary on the detector's fixed grid, per-shard
    /// `busy_gpc_ns` snapshots with the instant they were taken, and the
    /// last completed window's measured rates (GPU equivalents).
    /// `window = 0` disables the bookkeeping entirely.
    busy_window_ns: u64,
    busy_window_end_ns: u64,
    busy_snap: Vec<u128>,
    busy_snap_at: SimTime,
    busy_rate: Vec<f64>,
}

impl<'a, I: Iterator<Item = PinnedQuery>> CEngine<'a, I> {
    fn new(
        cluster: &'a Cluster,
        detail: ReportDetail,
        arrivals: I,
        faults: &FaultTimeline,
    ) -> Self {
        let n_models = cluster.shards[0].models().len();
        let engines: Vec<ShardEngine<'a>> = cluster
            .shards
            .iter()
            .map(|s| ShardEngine::new(s, detail))
            .collect();
        let total_partitions: usize = cluster
            .shards
            .iter()
            .map(|s| s.groups().iter().map(Vec::len).sum::<usize>())
            .sum();
        let weights: Vec<f64> = cluster
            .shards
            .iter()
            .map(MultiModelServer::capacity_hint_qps)
            .collect();
        let detector = cluster.loan.as_ref().map(|lp| {
            let max_b = cluster
                .shards
                .iter()
                .flat_map(|s| s.models())
                .map(|m| m.table.max_batch())
                .max()
                .expect("at least one model");
            DriftDetector::new(cluster.shards.len() * n_models, max_b, lp.detector)
        });
        let ledger = cluster.loan.as_ref().map(|lp| {
            LoanLedger::new(
                cluster.shards.iter().map(|s| s.budget()).collect(),
                lp.pool_gpus,
            )
        });
        let busy_window_ns = cluster
            .loan
            .as_ref()
            .filter(|lp| lp.demand_model == LoanDemandModel::MeasuredBusy)
            .map_or(0, |lp| lp.detector.window_ns);
        CEngine {
            cluster,
            arrivals,
            // Steady state: ≤ one completion per partition + one
            // reconfiguration per shard + the next arrival's Route + the
            // frontend backlog's pending dispatches (grows past this only
            // under gateway saturation).
            sim: Simulation::with_capacity(total_partitions + 2 * cluster.shards.len() + 2),
            engines,
            cap_hint: weights.clone(),
            router: RouterState::new(cluster.router, weights),
            detector,
            ledger,
            loans: Vec::new(),
            loan_out_total: 0,
            loan_since: SimTime::ZERO,
            loaned_gpu_ns: 0,
            routed: vec![0; cluster.shards.len()],
            n_models,
            route_seq: 0,
            scratch: Vec::with_capacity(cluster.shards.len()),
            alive: vec![true; cluster.shards.len()],
            failed_gpus: cluster
                .shards
                .iter()
                .map(|s| vec![false; s.budget().num_gpus])
                .collect(),
            degraded: cluster
                .shards
                .iter()
                .map(|s| vec![None; s.budget().num_gpus])
                .collect(),
            shed_per_model: vec![0; n_models],
            pending_recovery: vec![false; cluster.shards.len()],
            fault_queue: faults.events().iter().copied().collect(),
            fault_cost: faults.cost,
            fault_mode: faults.mode,
            fault_log: Vec::new(),
            fault_seq: 0,
            busy_window_ns,
            busy_window_end_ns: busy_window_ns,
            busy_snap: vec![0; cluster.shards.len()],
            busy_snap_at: SimTime::ZERO,
            busy_rate: vec![0.0; cluster.shards.len()],
        }
    }

    /// Rolls the measured-busy window forward when `now` crosses a window
    /// boundary: the completed span's GPC-weighted busy fractions become
    /// the current measured demand rates. Called per arrival (a cheap
    /// comparison when the measured model is off). Boundaries sit on the
    /// **drift detector's fixed tumbling grid**, so at the very arrival
    /// that closes a detector window — the only instant a loan decision
    /// can fire — the measurement describes that same window, not a stale
    /// drifted one.
    fn roll_busy_window(&mut self, now: SimTime) {
        if self.busy_window_ns == 0 || now.as_nanos() < self.busy_window_end_ns {
            return;
        }
        let dt = (now - self.busy_snap_at).as_nanos();
        for s in 0..self.engines.len() {
            let busy = self.engines[s].busy_gpc_ns();
            let delta = busy.saturating_sub(self.busy_snap[s]);
            self.busy_rate[s] = delta as f64 / dt as f64 / COMPUTE_SLICES as f64;
            self.busy_snap[s] = busy;
        }
        self.busy_snap_at = now;
        while self.busy_window_end_ns <= now.as_nanos() {
            self.busy_window_end_ns += self.busy_window_ns;
        }
    }

    /// Schedules `tq`'s [`CEvent::Route`] at its own arrival timestamp.
    fn schedule_route(&mut self, tq: PinnedQuery) {
        let key = self.route_seq;
        self.route_seq += 1;
        self.sim.schedule_at_keyed(
            SimTime::from_nanos(tq.1.spec.arrival_ns),
            key,
            CEvent::Route(tq),
        );
    }

    /// Schedules the fault queue's head event into the DES (the next one
    /// is armed when this one fires, keeping the pending count at one).
    fn schedule_next_fault(&mut self) {
        if let Some((at, ev)) = self.fault_queue.pop_front() {
            let key = self.fault_seq;
            self.fault_seq += 1;
            self.sim.schedule_at_keyed(at, key, CEvent::Fault(ev));
        }
    }

    /// Handles one arrival at its arrival instant: routes it to a shard
    /// (its pinned shard if alive, the router otherwise), applies brownout
    /// admission control against that shard's projected delay, feeds the
    /// loan controller's detector with the routed load, acts on any drift
    /// it flags (causal — the window-closing arrival exists *now*), and
    /// offers the query to the chosen shard's frontend.
    ///
    /// A shed query stops here: it never counts as routed, never reaches a
    /// queue, and never feeds the drift detector — admission control acts
    /// strictly before the query becomes load (invariant 10:
    /// served-or-shed, nothing in between).
    fn offer(&mut self, pin: Option<usize>, tq: TaggedQuerySpec, now: SimTime) {
        self.roll_busy_window(now);
        let s = match pin {
            Some(p) if p < self.engines.len() && self.alive[p] => p,
            _ => {
                self.scratch.clear();
                self.scratch
                    .extend(self.engines.iter().map(ShardEngine::outstanding_queries));
                self.router.pick(&self.scratch, &self.alive)
            }
        };
        if let Some(policy) = self.cluster.shed.as_ref() {
            let sla = self
                .cluster
                .shards
                .get(s)
                .and_then(|shard| shard.models().get(tq.model))
                .and_then(|m| m.sla_ns);
            if let Some(sla_ns) = sla {
                if policy.should_shed(tq.model, self.estimated_delay_ns(s), sla_ns) {
                    self.shed_per_model[tq.model] += 1;
                    return;
                }
            }
        }
        self.routed[s] += 1;
        let report = self.detector.as_mut().and_then(|det| {
            det.observe(
                s * self.n_models + tq.model,
                tq.spec.arrival_ns,
                tq.spec.batch,
            )
        });
        if report.is_some() {
            self.rebalance(now);
        }
        let (engines, sim) = (&mut self.engines, &mut self.sim);
        engines[s].offer(tq, &mut |t, k, e| {
            sim.schedule_at_keyed(
                t,
                k,
                CEvent::Shard {
                    shard: s as u32,
                    event: e,
                },
            );
        });
    }

    /// Estimated demand of shard `s` in full-GPU equivalents **at live
    /// efficiency**: each model's observed rate divided by the throughput
    /// one GPU's worth of its *currently serving* partition mix delivers
    /// at the observed mean batch. A shard offered exactly its current
    /// capacity therefore estimates demand ≈ its GPU count — the scale the
    /// [`LoanPolicy`] thresholds are written against. (Naive full-GPU
    /// equivalents — rate × largest-partition latency — would be off by
    /// the whole MIG packing gain, which exceeds 5× for the small models.)
    ///
    /// The efficiency reference is the engine's **live** group, not the
    /// initial plan: after heavy re-planning the planned mix no longer
    /// describes what is running, and normalizing against it would skew
    /// borrow/reclaim decisions by the drift between the two mixes. A
    /// group momentarily dark mid-reconfiguration (no live instances)
    /// falls back to the initial plan rather than dividing by zero.
    fn shard_demand_gpus(&self, s: usize) -> f64 {
        let detector = self.detector.as_ref().expect("demand needs the detector");
        let rates = detector.observed_rates_qps();
        let shard = &self.cluster.shards[s];
        let live = self.engines[s].live_groups();
        shard
            .models()
            .iter()
            .enumerate()
            .map(|(m, spec)| {
                let lane = s * self.n_models + m;
                let dist = detector
                    .observed_distribution(lane)
                    .unwrap_or_else(|| spec.dist.clone());
                let group: &[mig_gpu::ProfileSize] = if live[m].is_empty() {
                    &shard.groups()[m]
                } else {
                    &live[m]
                };
                let group_qps = spec.table.capacity_qps(group, &dist);
                let group_gpcs: usize = group.iter().map(|&size| size.gpcs()).sum();
                let per_gpu_qps = group_qps * mig_gpu::COMPUTE_SLICES as f64 / group_gpcs as f64;
                rates.get(lane).copied().unwrap_or(0.0) / per_gpu_qps
            })
            .sum()
    }

    /// Number of shard `s`'s base-budget GPUs currently failed.
    fn failed_count(&self, s: usize) -> usize {
        self.failed_gpus[s].iter().filter(|&&f| f).count()
    }

    /// `budget` with shard `s`'s failed GPUs removed (whole GPUs at
    /// [`COMPUTE_SLICES`] GPCs each). `None` when no whole GPU survives.
    fn minus_failed(&self, s: usize, budget: GpcBudget) -> Option<GpcBudget> {
        let failed = self.failed_count(s);
        if failed == 0 {
            return Some(budget);
        }
        if budget.num_gpus <= failed {
            return None;
        }
        let gpus = budget.num_gpus - failed;
        let gpcs = budget
            .total_gpcs
            .saturating_sub(failed * COMPUTE_SLICES)
            .clamp(1, gpus * COMPUTE_SLICES);
        Some(GpcBudget::new(gpcs, gpus))
    }

    /// The budget shard `s` actually serves with right now: its base share
    /// plus held loans, minus failed GPUs. `None` when every GPU is down.
    fn effective_budget(&self, s: usize) -> Option<GpcBudget> {
        let held = match &self.ledger {
            Some(l) => l.budget_with_loans(s, l.loaned[s]),
            None => self.cluster.shards[s].budget(),
        };
        self.minus_failed(s, held)
    }

    /// Projected queueing delay on shard `s` for admission control:
    /// outstanding queries over the shard's planned capacity, scaled by
    /// the fraction of its base GPUs still effective. Deliberately coarse
    /// — the shed policy only needs a monotone overload signal, and this
    /// one is O(1) per arrival. A shard with no surviving GPU projects
    /// infinite delay (everything sheddable sheds until repair).
    fn estimated_delay_ns(&self, s: usize) -> f64 {
        let Some(budget) = self.effective_budget(s) else {
            return f64::INFINITY;
        };
        let base_gpus = self.cluster.shards[s].budget().num_gpus.max(1);
        let cap_qps = self.cap_hint[s] * budget.num_gpus as f64 / base_gpus as f64;
        if cap_qps <= 0.0 {
            return f64::INFINITY;
        }
        self.engines[s].outstanding_queries() as f64 / cap_qps * 1e9
    }

    /// Per-shard demand in full-GPU equivalents under the policy's
    /// [`LoanDemandModel`]: the analytical live-efficiency estimate, or
    /// the last completed measurement window's busy fractions (kept fresh
    /// by [`roll_busy_window`](Self::roll_busy_window)).
    fn demand_estimates(&mut self, now: SimTime) -> Vec<f64> {
        let policy = self.cluster.loan.as_ref().expect("demand needs a policy");
        let n = self.engines.len();
        match policy.demand_model {
            LoanDemandModel::PlannedEfficiency => {
                (0..n).map(|s| self.shard_demand_gpus(s)).collect()
            }
            LoanDemandModel::MeasuredBusy => {
                self.roll_busy_window(now);
                self.busy_rate.clone()
            }
        }
    }

    /// Acts on the freshest trusted detector window: reclaims first
    /// (freeing the pool), then lends to overloaded shards. Shards
    /// mid-reconfiguration defer — the detector keeps its old baseline so
    /// the next window re-triggers and the deferred transfer gets another
    /// chance. Dead shards are skipped (they drain until repair), and a
    /// shard's owned/held GPU counts are failure-adjusted so lost capacity
    /// reads as a genuine shortfall the pool can backfill.
    fn rebalance(&mut self, now: SimTime) {
        let demand = self.demand_estimates(now);
        let policy = self
            .cluster
            .loan
            .as_ref()
            .expect("rebalance requires a loan policy");
        let mut deferred = false;
        // Pass 0 executes returns, pass 1 borrows — so one window's
        // reclaims can fund its loans.
        for pass in 0..2 {
            for (s, &shard_demand) in demand.iter().enumerate() {
                if !self.alive[s] {
                    continue;
                }
                let failed = self.failed_count(s);
                let ledger = self.ledger.as_ref().expect("ledger exists with policy");
                let base = ledger.base[s].num_gpus - failed;
                let current = base + ledger.loaned[s];
                let target = policy.target_gpus(shard_demand, base, current, ledger.pool_free);
                let delta = target as i64 - current as i64;
                if (pass == 0 && delta >= 0) || (pass == 1 && delta <= 0) {
                    continue;
                }
                if self.engines[s].reconfig_in_flight() {
                    deferred = true;
                    continue;
                }
                self.apply_transfer(s, delta, now);
            }
        }
        if !deferred {
            self.detector
                .as_mut()
                .expect("rebalance implies detector")
                .rebaseline();
        }
    }

    /// Moves `delta` GPUs between the pool and shard `s` and re-plans the
    /// shard onto its new budget, charging the reslice plus the per-GPU
    /// handover cost (a transfer the new plan ignores interrupts nothing
    /// and charges nothing — the moved GPU just sits in the new pool).
    /// Declined — no ledger mutation, no re-plan — when the
    /// failure-adjusted result could not host one GPU and one GPC per
    /// model.
    fn apply_transfer(&mut self, s: usize, delta: i64, now: SimTime) {
        // The caller (rebalance) skips shards mid-reconfiguration; a
        // transfer applied to one would silently desynchronize the ledger
        // from the shard's adopted budget.
        debug_assert!(!self.engines[s].reconfig_in_flight());
        {
            let ledger = self.ledger.as_ref().expect("ledger exists with policy");
            let held = ledger.budget_with_loans(
                s,
                (ledger.loaned[s] as i64 + delta)
                    .try_into()
                    .expect("loans never go negative"),
            );
            match self.minus_failed(s, held) {
                Some(b) if b.num_gpus >= self.n_models && b.total_gpcs >= self.n_models => {}
                _ => return,
            }
        }
        let policy = self.cluster.loan.as_ref().expect("loan policy present");
        let detector = self.detector.as_ref().expect("transfer implies detector");
        let specs = self.cluster.shards[s].models();
        // Budget shares from the observed traffic — the same
        // `ModelSpec::demand_weight` the shard's own drift re-planner
        // splits budgets with.
        let mut weights = Vec::with_capacity(specs.len());
        let mut dists: Vec<BatchDistribution> = Vec::with_capacity(specs.len());
        for (m, spec) in specs.iter().enumerate() {
            let lane = s * self.n_models + m;
            let dist = detector
                .observed_distribution(lane)
                .unwrap_or_else(|| spec.dist.clone());
            let rate = detector
                .observed_rates_qps()
                .get(lane)
                .copied()
                .unwrap_or(0.0);
            weights.push(spec.demand_weight(&dist, rate));
            dists.push(dist);
        }

        // Opportunity-cost integral: close the period at the old loan
        // level before the transfer changes it.
        self.loaned_gpu_ns +=
            self.loan_out_total as u128 * u128::from((now - self.loan_since).as_nanos());
        self.loan_since = now;
        let moved = delta.unsigned_abs() as usize;
        self.loan_out_total = if delta > 0 {
            self.loan_out_total + moved
        } else {
            self.loan_out_total - moved
        };

        let ledger = self.ledger.as_mut().expect("ledger exists with policy");
        let held = ledger.transfer(s, delta);
        let pool_free_after = ledger.pool_free;
        let budget = self
            .minus_failed(s, held)
            .expect("feasibility was checked before the transfer");
        let extra = SimDuration::from_nanos(policy.cost.gpu_handover_ns(moved));
        let (engines, sim) = (&mut self.engines, &mut self.sim);
        engines[s].force_replan(
            &ReplanRequest {
                budget,
                weights: &weights,
                dists: &dists,
                cost: &policy.cost,
                extra_downtime: extra,
                mode: policy.mode,
            },
            now,
            &mut |t, k, e| {
                sim.schedule_at_keyed(
                    t,
                    k,
                    CEvent::Shard {
                        shard: s as u32,
                        event: e,
                    },
                );
            },
        );
        self.loans.push(LoanEvent {
            at: now,
            shard: s,
            gpus_delta: delta,
            pool_free_after,
        });
    }

    /// Applies one fault-timeline event. A capacity event is also a loan
    /// trigger in its own right: with a loan policy the controller
    /// rebalances immediately — the batch pool backfills a failure without
    /// waiting for statistical drift (steady traffic routed around a dead
    /// GPU may never drift enough to re-trigger the detector). The
    /// rebalance runs **before** the shard's own recovery re-plan so a
    /// backfill borrow and the recovery land in one transition; the
    /// recovery poke afterwards is then a no-op (or the fallback when no
    /// transfer engaged).
    fn on_fault(&mut self, event: FaultEvent, now: SimTime) {
        let rebalance = |this: &mut Self, now| {
            if this.cluster.loan.is_some() {
                this.rebalance(now);
            }
        };
        let requeued = match event {
            FaultEvent::GpuFail { shard, gpu } => match self.gpu_kill(shard, gpu, now) {
                Some(requeued) => {
                    rebalance(self, now);
                    self.request_recovery(shard, now);
                    requeued
                }
                // Double-fail or unknown slot: a genuine no-op — no
                // rebalance, no re-plan, no divergence from the
                // single-fail run.
                None => 0,
            },
            FaultEvent::GpuRepair { shard, gpu } => {
                if self.gpu_unfail(shard, gpu) {
                    rebalance(self, now);
                    self.request_recovery(shard, now);
                }
                0
            }
            FaultEvent::GpuDegrade {
                shard,
                gpu,
                factor_milli,
            } => {
                // Capacity is not lost, only slowed: no rebalance, no
                // recovery re-plan — a degrade-aware dispatcher steers
                // around the slow instances on its own.
                self.gpu_degrade(shard, gpu, factor_milli);
                0
            }
            FaultEvent::GpuRestore { shard, gpu } => {
                self.gpu_restore(shard, gpu);
                0
            }
            FaultEvent::ShardFail { shard } => {
                // A drain, not a kill: the router stops sending traffic
                // and the shard serves out what it already holds.
                if shard < self.alive.len() {
                    self.alive[shard] = false;
                }
                rebalance(self, now);
                0
            }
            FaultEvent::ShardRepair { shard } => {
                if shard < self.alive.len() && !self.alive[shard] {
                    self.alive[shard] = true;
                    rebalance(self, now);
                    // Rejoin with a fresh plan for the traffic observed
                    // during the outage (a no-op if PARIS lands on the
                    // running layout).
                    self.request_recovery(shard, now);
                }
                0
            }
        };
        self.fault_log.push(FaultRecord {
            at: now,
            event,
            requeued,
        });
    }

    /// An abrupt GPU loss on shard `s`: marks the slot failed and kills
    /// the instances packed on the failing GPU (their in-flight and
    /// queued work requeues through the dispatch path), returning how
    /// many queries that requeued. The recovery re-plan is the caller's
    /// next step. Unknown slots and double-fails return `None` — nothing
    /// changed, so the caller must not react either.
    fn gpu_kill(&mut self, s: usize, gpu: usize, now: SimTime) -> Option<u64> {
        if s >= self.engines.len() || gpu >= self.failed_gpus[s].len() || self.failed_gpus[s][gpu] {
            return None;
        }
        // A fault landing mid-rolling-reconfiguration must not strand the
        // in-flight step: the quiesced survivors are revived first (the
        // armed ready event goes stale via its epoch stamp), then the kill
        // and the recovery re-plan proceed against a coherent layout.
        if self.engines[s].reconfig_in_flight() {
            let (engines, sim) = (&mut self.engines, &mut self.sim);
            engines[s].abort_reconfig(now, &mut |t, k, e| {
                sim.schedule_at_keyed(
                    t,
                    k,
                    CEvent::Shard {
                        shard: s as u32,
                        event: e,
                    },
                );
            });
        }
        self.failed_gpus[s][gpu] = true;
        // Identify the physical GPU with one bin of the deterministic
        // first-fit-descending packing of the live layout, packed per
        // model group (groups never share a GPU). An index past the
        // packing is an idle GPU: capacity shrinks, nothing dies.
        let mut bins: Vec<Vec<usize>> = Vec::new();
        for group in self.engines[s].live_members() {
            let sizes: Vec<ProfileSize> = group.iter().map(|&(_, size)| size).collect();
            for bin in pack_gpus(&sizes) {
                bins.push(bin.into_iter().map(|i| group[i].0).collect());
            }
        }
        Some(match bins.get(gpu) {
            Some(victims) => {
                let (engines, sim) = (&mut self.engines, &mut self.sim);
                engines[s].kill_instances(victims, now, &mut |t, k, e| {
                    sim.schedule_at_keyed(
                        t,
                        k,
                        CEvent::Shard {
                            shard: s as u32,
                            event: e,
                        },
                    );
                })
            }
            None => 0,
        })
    }

    /// A slow-GPU fault on shard `s`: identifies the physical GPU with the
    /// same deterministic packing [`gpu_kill`](Self::gpu_kill) uses and
    /// throttles the instances packed on it by `factor_milli / 1000`. The
    /// victims keep serving — slower — and their worker slots are recorded
    /// so the matching [`FaultEvent::GpuRestore`] un-throttles exactly the
    /// silicon that was hot. Unknown slots and double-degrades are no-ops;
    /// an idle GPU records an empty victim list (so restore still pairs).
    fn gpu_degrade(&mut self, s: usize, gpu: usize, factor_milli: u32) {
        if s >= self.engines.len()
            || gpu >= self.degraded[s].len()
            || self.degraded[s][gpu].is_some()
        {
            return;
        }
        let mut bins: Vec<Vec<usize>> = Vec::new();
        for group in self.engines[s].live_members() {
            let sizes: Vec<ProfileSize> = group.iter().map(|&(_, size)| size).collect();
            for bin in pack_gpus(&sizes) {
                bins.push(bin.into_iter().map(|i| group[i].0).collect());
            }
        }
        let victims = bins.get(gpu).cloned().unwrap_or_default();
        if !victims.is_empty() {
            // Sub-unit factors would mean a *faster* GPU; clamp to 1.0 so a
            // malformed plan degrades to a recorded no-op instead of
            // panicking the dispatcher.
            let factor = f64::from(factor_milli.max(1000)) / 1000.0;
            self.engines[s].set_degrade(&victims, factor);
        }
        self.degraded[s][gpu] = Some((factor_milli, victims));
    }

    /// The slow GPU returns to full speed: un-throttles the worker slots
    /// recorded at degrade time. Restores of healthy slots are no-ops.
    fn gpu_restore(&mut self, s: usize, gpu: usize) {
        if s >= self.engines.len() || gpu >= self.degraded[s].len() {
            return;
        }
        if let Some((_, victims)) = self.degraded[s][gpu].take() {
            if !victims.is_empty() {
                self.engines[s].set_degrade(&victims, 1.0);
            }
        }
    }

    /// The failed GPU returns: restores the budget slot (the caller
    /// re-plans next). Repairs of healthy slots are no-ops (`false`).
    fn gpu_unfail(&mut self, s: usize, gpu: usize) -> bool {
        if s >= self.engines.len() || gpu >= self.failed_gpus[s].len() || !self.failed_gpus[s][gpu]
        {
            return false;
        }
        self.failed_gpus[s][gpu] = false;
        true
    }

    /// Marks shard `s` as owing a recovery re-plan and attempts it now;
    /// if it cannot run yet it is retried after every later event of the
    /// shard.
    fn request_recovery(&mut self, s: usize, now: SimTime) {
        self.pending_recovery[s] = true;
        self.poke_recovery(s, now);
    }

    /// Runs a pending recovery re-plan when possible: no reconfiguration
    /// in flight and the effective budget (base + loans − failures) hosts
    /// one GPU and one GPC per model — until a repair makes that true the
    /// re-plan stays pending (survivor instances keep serving; a fully
    /// dark group stashes arrivals, which is why a never-repaired fail
    /// must not outlive the scenario). Plans from the loan detector's
    /// observed traffic when one exists, the declared specs otherwise.
    fn poke_recovery(&mut self, s: usize, now: SimTime) {
        if !self.pending_recovery[s] || self.engines[s].reconfig_in_flight() {
            return;
        }
        let Some(budget) = self.effective_budget(s) else {
            return;
        };
        if budget.num_gpus < self.n_models || budget.total_gpcs < self.n_models {
            return;
        }
        self.pending_recovery[s] = false;
        let specs = self.cluster.shards[s].models();
        let mut weights = Vec::with_capacity(specs.len());
        let mut dists: Vec<BatchDistribution> = Vec::with_capacity(specs.len());
        for (m, spec) in specs.iter().enumerate() {
            match &self.detector {
                Some(det) => {
                    let lane = s * self.n_models + m;
                    let dist = det
                        .observed_distribution(lane)
                        .unwrap_or_else(|| spec.dist.clone());
                    let rate = det.observed_rates_qps().get(lane).copied().unwrap_or(0.0);
                    weights.push(spec.demand_weight(&dist, rate));
                    dists.push(dist);
                }
                None => {
                    weights.push(spec.weight);
                    dists.push(spec.dist.clone());
                }
            }
        }
        let (cost, mode) = (self.fault_cost, self.fault_mode);
        let (engines, sim) = (&mut self.engines, &mut self.sim);
        engines[s].force_replan(
            &ReplanRequest {
                budget,
                weights: &weights,
                dists: &dists,
                cost: &cost,
                extra_downtime: SimDuration::ZERO,
                mode,
            },
            now,
            &mut |t, k, e| {
                sim.schedule_at_keyed(
                    t,
                    k,
                    CEvent::Shard {
                        shard: s as u32,
                        event: e,
                    },
                );
            },
        );
    }

    fn run(mut self) -> ClusterReport {
        if let Some(tq) = self.arrivals.next() {
            self.schedule_route(tq);
        }
        self.schedule_next_fault();
        while let Some((now, ev)) = self.sim.next_event() {
            let (shard, event) = match ev {
                CEvent::Route((pin, tq)) => {
                    // One-lookahead laziness: learning of arrival k at its
                    // own instant always happens before arrival k+1's
                    // instant (the merged stream is sorted), so the
                    // successor's Route is never scheduled in the past.
                    if let Some(next) = self.arrivals.next() {
                        self.schedule_route(next);
                    }
                    self.offer(pin, tq, now);
                    continue;
                }
                CEvent::Fault(fault) => {
                    self.on_fault(fault, now);
                    self.schedule_next_fault();
                    continue;
                }
                CEvent::Shard { shard, event } => (shard, event),
            };
            let s = shard as usize;
            let (engines, sim) = (&mut self.engines, &mut self.sim);
            engines[s].handle(now, event, &mut |t, k, e| {
                sim.schedule_at_keyed(t, k, CEvent::Shard { shard, event: e });
            });
            if self.pending_recovery[s] && !self.engines[s].reconfig_in_flight() {
                self.poke_recovery(s, now);
            }
        }

        let end = self.sim.now();
        self.loaned_gpu_ns +=
            self.loan_out_total as u128 * u128::from((end - self.loan_since).as_nanos());
        let peak = self.sim.peak_pending();
        let per_shard: Vec<MultiRunReport> =
            self.engines.into_iter().map(|e| e.finish(peak)).collect();
        let histogram = LatencyHistogram::merged(per_shard.iter().map(|r| &r.histogram));
        let makespan = per_shard
            .iter()
            .map(|r| r.makespan)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let makespan_s = makespan.as_secs_f64();
        let completed = histogram.count();
        ClusterReport {
            routed: self.routed,
            shed_per_model: self.shed_per_model,
            histogram,
            makespan,
            achieved_qps: if makespan_s > 0.0 {
                completed as f64 / makespan_s
            } else {
                0.0
            },
            loans: self.loans,
            faults: self.fault_log,
            loaned_gpu_seconds: self.loaned_gpu_ns as f64 / 1e9,
            peak_pending_events: peak,
            per_shard,
        }
    }
}
