//! The cluster: N shards behind a router, plus capacity loaning, driven by
//! a windowed multi-lane DES (one event queue per shard, one coordinator).

use std::collections::VecDeque;

use des_engine::{pack_stamp, SimDuration, SimTime};
use inference_obs::{
    merge_online, FaultKind, FlightRecorder, MetricRegistry, ObsRequest, ObsSink, OnlineLane,
    QueryTrace, TraceEvent, TraceSink,
};
use inference_server::{MultiModelServer, MultiRunReport, ReportDetail, ShardEngine};
use inference_workload::{BatchDistribution, DriftDetector, TaggedQuerySpec};
use mig_gpu::COMPUTE_SLICES;
use paris_core::GpcBudget;
use server_metrics::LatencyHistogram;

use crate::faults::{FaultEvent, FaultTimeline};
use crate::loan::{degrade_inflated_demand, LoanDemandModel, LoanEvent, LoanLedger, LoanPolicy};
use crate::parallel::{
    ArmedReplan, Command, Lane, LaneExecutor, ProfilingExecutor, SerialExecutor, SyncWindow,
    WindowProfile, WorkerPool,
};
use crate::router::{RouterPolicy, RouterState};
use crate::shed::{degraded_capacity_gpus, ShedPolicy};

/// One arrival with an optional shard pin: `Some(shard)` queries go to
/// that shard while it is alive (shard-tagged skewed traces, per-query
/// affinity) and fall back to the router when it is not; `None` queries
/// are routed by the [`RouterPolicy`] as always.
pub type PinnedQuery = (Option<usize>, TaggedQuerySpec);

/// One fault event a run applied, with what it ripped loose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// When the event fired.
    pub at: SimTime,
    /// What happened.
    pub event: FaultEvent,
    /// Queries the event pulled off killed instances and requeued
    /// (non-zero only for [`FaultEvent::GpuFail`] hitting busy instances).
    pub requeued: u64,
}

/// The number of worker threads [`Cluster::run_scenario`] (and everything
/// built on it) advances shard lanes with, taken from the
/// `CLUSTER_THREADS` environment variable (default 1). Thread count never
/// changes results — ARCHITECTURE.md invariant 11 — so this is purely a
/// wall-clock knob.
#[must_use]
pub fn cluster_threads_from_env() -> usize {
    std::env::var("CLUSTER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

/// A multi-server inference cluster: each *shard* is a full
/// [`MultiModelServer`] (its own GPC budget, PARIS-planned groups, per-model
/// schedulers, optional drift re-planning), and the cluster stacks N of
/// them behind a [`RouterPolicy`] inside one deterministic discrete-event
/// simulation, optionally lending batch-pool GPUs to overloaded shards
/// ([`LoanPolicy`]).
///
/// # Execution model
///
/// Shards only couple at gateway decisions — routing, shedding, loans,
/// faults. The engine exploits that: each shard advances on its own event
/// queue (a [`SyncWindow`]-bounded *lane*), and the coordinator exchanges
/// arrivals, loan transfers and fault commands with the lanes only at
/// window edges, through per-shard mailboxes ordered by the same
/// `(time, key)` stamps the event queues use. Lane advancement is a pure
/// function of the lane and its mailbox, so `CLUSTER_THREADS` workers can
/// advance lanes concurrently and the result is **bit-for-bit identical at
/// any thread count** (invariant 11, pinned by the determinism suite).
///
/// # Degeneration contract
///
/// A cluster of exactly **one** shard with no loan policy is *bit-for-bit*
/// the shard's own [`MultiModelServer::run_stream`] — same records, same
/// latency samples, same utilization, same reconfigurations — for every
/// router policy (they all have one choice). The property suite enforces
/// this, pinning the cluster layer to the server semantics the PR-2
/// degeneration contract already pins to the single-model fast path.
///
/// # Conservation contract
///
/// No query is dropped or double-served across shard handoffs, loans or
/// reclaims: routing assigns each arrival to exactly one shard, and within
/// a shard the reconfiguration machinery drains quiesced instances and
/// stashes dark-group arrivals. In particular a reclaim that removes a GPU
/// mid-drain never strands a queued query. Unit and property tests enforce
/// this.
///
/// # Examples
///
/// ```
/// use dnn_zoo::ModelKind;
/// use inference_cluster::{Cluster, RouterPolicy};
/// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
/// use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
/// use paris_core::{GpcBudget, ProfileTable};
/// use inference_server::{ModelSpec, MultiModelConfig, MultiModelServer};
///
/// let perf = PerfModel::new(DeviceSpec::a100());
/// let dist = BatchDistribution::paper_default();
/// let table = ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
/// let shard = |gpus: usize| {
///     MultiModelServer::new(
///         vec![ModelSpec::new("mobilenet", table.clone(), dist.clone())],
///         GpcBudget::new(gpus * 7, gpus),
///         MultiModelConfig::new(),
///     )
/// };
/// let cluster = Cluster::new(vec![shard(2)?, shard(1)?], RouterPolicy::JoinShortestQueue);
/// let trace = MultiTraceGenerator::new(vec![PhaseSpec::new(0.3, vec![(400.0, dist)])], 7);
/// let report = cluster.run(&trace.generate());
/// assert_eq!(report.completed(), report.routed.iter().sum::<u64>());
/// assert_eq!(report.per_shard.len(), 2);
/// # Ok::<(), paris_core::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    shards: Vec<MultiModelServer>,
    router: RouterPolicy,
    loan: Option<LoanPolicy>,
    shed: Option<ShedPolicy>,
    /// Per-shard lane event-queue capacity hints
    /// ([`lane_capacity_hints`](Self::lane_capacity_hints)); purely an
    /// allocation knob, never observable in any report.
    lane_capacity: Option<Vec<usize>>,
}

impl Cluster {
    /// Creates a cluster over the given shards.
    ///
    /// Every shard must host the same *number* of models (arrivals are
    /// tagged with a model index that must be meaningful on whichever
    /// shard the router picks — shards are replicas of one deployment,
    /// possibly with different capacities).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or the shards disagree on model count.
    #[must_use]
    pub fn new(shards: Vec<MultiModelServer>, router: RouterPolicy) -> Self {
        assert!(!shards.is_empty(), "cluster needs at least one shard");
        let models = shards[0].models().len();
        assert!(
            shards.iter().all(|s| s.models().len() == models),
            "every shard must host the same number of models"
        );
        Cluster {
            shards,
            router,
            loan: None,
            shed: None,
            lane_capacity: None,
        }
    }

    /// Enables Aryl-style capacity loaning from a batch pool.
    #[must_use]
    pub fn with_loan(mut self, loan: LoanPolicy) -> Self {
        self.loan = Some(loan);
        self
    }

    /// Enables brownout admission control: low-priority-class queries are
    /// rejected at the gateway when the picked shard's projected delay
    /// makes their SLA hopeless (see [`ShedPolicy`]). Models without an
    /// SLA are never shed (there is no budget to protect).
    #[must_use]
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = Some(shed);
        self
    }

    /// Pre-sizes every shard lane's event queue (and, in lookahead mode,
    /// its command mailbox) for the given offered load — computed once via
    /// [`lane_capacity_hints`](Self::lane_capacity_hints) and applied by
    /// every run entry point. Purely an allocation knob: reports are
    /// bit-for-bit identical with or without it; with it, a steady-state
    /// run performs no lane-queue reallocation after construction.
    #[must_use]
    pub fn with_lane_capacity(mut self, offered_qps: f64) -> Self {
        self.lane_capacity = Some(self.lane_capacity_hints(offered_qps));
        self
    }

    /// Per-shard lane event-queue capacity hints for an offered load.
    ///
    /// A lane's queue holds one completion event per busy partition, at
    /// most one reconfiguration timer, plus the frontend backlog's pending
    /// dispatches — the only unbounded term, proportional to the shard's
    /// share of the offered load times how long queries linger. The hint
    /// bounds that share by the shard's capacity-weighted fraction of
    /// `offered_qps` sustained for a conservative sojourn window (4× the
    /// largest per-model SLA, or 80 ms without SLAs — transient overload
    /// during faults holds queries well past a healthy sojourn):
    /// `2·partitions + 16 + share_qps · sojourn`.
    #[must_use]
    pub fn lane_capacity_hints(&self, offered_qps: f64) -> Vec<usize> {
        let total: f64 = self
            .shards
            .iter()
            .map(MultiModelServer::capacity_hint_qps)
            .sum();
        self.shards
            .iter()
            .map(|shard| {
                let partitions: usize = shard.groups().iter().map(Vec::len).sum();
                let share = if total > 0.0 {
                    shard.capacity_hint_qps() / total
                } else {
                    1.0 / self.shards.len() as f64
                };
                let sojourn_ns = shard
                    .models()
                    .iter()
                    .filter_map(|m| m.sla_ns)
                    .max()
                    .map_or(80_000_000, |sla| sla.saturating_mul(4));
                let backlog = (offered_qps.max(0.0) * share * sojourn_ns as f64 / 1e9).ceil();
                2 * partitions + 16 + backlog as usize
            })
            .collect()
    }

    /// The hosted shards.
    #[must_use]
    pub fn shards(&self) -> &[MultiModelServer] {
        &self.shards
    }

    /// The routing policy.
    #[must_use]
    pub fn router(&self) -> RouterPolicy {
        self.router
    }

    /// The loan policy, if loaning is enabled.
    #[must_use]
    pub fn loan(&self) -> Option<&LoanPolicy> {
        self.loan.as_ref()
    }

    /// The brownout shed policy, if admission control is enabled.
    #[must_use]
    pub fn shed(&self) -> Option<&ShedPolicy> {
        self.shed.as_ref()
    }

    /// Simulates the cluster over a materialized tagged trace at the first
    /// shard's configured detail.
    ///
    /// The materialized trace is also the lane pre-sizing profile: unless
    /// [`with_lane_capacity`](Self::with_lane_capacity) already pinned
    /// hints, the trace's own offered rate sizes every lane's event queue
    /// up front ([`lane_capacity_hints`](Self::lane_capacity_hints)).
    #[must_use]
    pub fn run(&self, trace: &[TaggedQuerySpec]) -> ClusterReport {
        let hints = if self.lane_capacity.is_none() {
            let span_ns = match (trace.first(), trace.last()) {
                (Some(f), Some(l)) => l.spec.arrival_ns.saturating_sub(f.spec.arrival_ns),
                _ => 0,
            };
            (span_ns > 0)
                .then(|| self.lane_capacity_hints(trace.len() as f64 / (span_ns as f64 / 1e9)))
        } else {
            None
        };
        self.run_windowed_inner(
            trace.iter().copied().map(|tq| (None, tq)),
            self.shards[0].config().detail,
            &FaultTimeline::empty(),
            SyncWindow::PerEvent,
            cluster_threads_from_env(),
            ObsRequest::OFF,
            hints.as_deref(),
        )
        .0
    }

    /// Simulates the cluster over a *streamed* tagged arrival sequence
    /// (ascending arrival times) until every accepted query completes.
    #[must_use]
    pub fn run_stream<I>(&self, arrivals: I, detail: ReportDetail) -> ClusterReport
    where
        I: IntoIterator<Item = TaggedQuerySpec>,
    {
        self.run_scenario(
            arrivals.into_iter().map(|tq| (None, tq)),
            detail,
            &FaultTimeline::empty(),
        )
    }

    /// Simulates the cluster under a fault scenario: a (possibly
    /// shard-pinned, see [`PinnedQuery`]) arrival stream plus a
    /// [`FaultTimeline`] injected into the same DES. GPU failures kill
    /// the instances packed on the failing GPU (their work requeues) and
    /// the shard re-plans onto the survivor budget; shard failures drop
    /// the shard from the routing rotation until repair; with a
    /// [`LoanPolicy`], every fault also triggers an immediate loan
    /// rebalance so the batch pool can backfill lost capacity.
    ///
    /// An **empty timeline with no pins is bit-for-bit
    /// [`run_stream`](Self::run_stream)** — the fault machinery costs
    /// nothing until an event fires; the unit suite pins this.
    ///
    /// Runs per-event windows ([`SyncWindow::PerEvent`]) at
    /// [`cluster_threads_from_env`] worker threads; thread count never
    /// changes the result.
    #[must_use]
    pub fn run_scenario<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        faults: &FaultTimeline,
    ) -> ClusterReport
    where
        I: IntoIterator<Item = PinnedQuery>,
    {
        self.run_windowed(
            arrivals,
            detail,
            faults,
            SyncWindow::PerEvent,
            cluster_threads_from_env(),
        )
    }

    /// The fully general entry point: simulates the cluster under a fault
    /// scenario with an explicit [`SyncWindow`] mode and worker thread
    /// count.
    ///
    /// For a fixed `window`, **`threads` never changes the result** — the
    /// per-event and lookahead modes are each deterministic bit-for-bit at
    /// any thread count (invariant 11). The two window modes are *distinct
    /// models*, though: per-event windows give the coordinator exact
    /// fleet state at every decision (the sequential shared-queue order),
    /// while `Lookahead(L)` freezes its reads at each window's leading
    /// edge — an explicit model of cross-shard information latency, and
    /// the mode that actually scales across cores.
    #[must_use]
    pub fn run_windowed<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        faults: &FaultTimeline,
        window: SyncWindow,
        threads: usize,
    ) -> ClusterReport
    where
        I: IntoIterator<Item = PinnedQuery>,
    {
        self.run_windowed_inner(
            arrivals,
            detail,
            faults,
            window,
            threads,
            ObsRequest::OFF,
            None,
        )
        .0
    }

    /// [`run_windowed`](Self::run_windowed) with the flight recorder
    /// attached: every lane's dispatch core and the gateway record the full
    /// query lifecycle (arrivals, routing, sheds, service, re-plans, loans,
    /// faults), merged into one deterministic [`QueryTrace`].
    ///
    /// **Invariant 12 (zero observer effect):** the returned
    /// [`ClusterReport`] is bit-for-bit the untraced `run_windowed` report,
    /// and the trace itself is invariant under `threads` — both pinned by
    /// the property suite.
    #[must_use]
    pub fn run_windowed_traced<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        faults: &FaultTimeline,
        window: SyncWindow,
        threads: usize,
    ) -> (ClusterReport, QueryTrace)
    where
        I: IntoIterator<Item = PinnedQuery>,
    {
        let (report, trace, _) = self.run_windowed_inner(
            arrivals,
            detail,
            faults,
            window,
            threads,
            ObsRequest::traced(),
            None,
        );
        (report, trace.expect("tracing was requested"))
    }

    /// [`run_windowed`](Self::run_windowed) with the **online telemetry
    /// plane** attached: each lane folds its own hook stream into private
    /// windowed aggregates live on the DES clock (O(1) memory per series
    /// and window — no trace is retained), merged deterministically in
    /// lane order into one [`MetricRegistry`] on a `online_window_ns` grid.
    ///
    /// **Invariant 13:** the returned registry is byte-for-byte
    /// [`MetricRegistry::from_trace`] of the same run's trace on the same
    /// grid, at any thread count — `from_trace` is the oracle the property
    /// suite and `bench_obs` hold this against. Invariant 12 still holds
    /// too: the report is bit-for-bit the unobserved run's.
    #[must_use]
    pub fn run_windowed_observed<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        faults: &FaultTimeline,
        window: SyncWindow,
        threads: usize,
        online_window_ns: u64,
    ) -> (ClusterReport, MetricRegistry)
    where
        I: IntoIterator<Item = PinnedQuery>,
    {
        let (report, _, registry) = self.run_windowed_inner(
            arrivals,
            detail,
            faults,
            window,
            threads,
            ObsRequest::online(online_window_ns),
            None,
        );
        (report, registry.expect("online telemetry was requested"))
    }

    /// Both observability planes at once: the retained [`QueryTrace`] and
    /// the live [`MetricRegistry`] from one run — what the invariant-13
    /// checks compare, and what `trace_report --slo` uses to pair alerts
    /// with their causal attribution.
    #[must_use]
    pub fn run_windowed_instrumented<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        faults: &FaultTimeline,
        window: SyncWindow,
        threads: usize,
        online_window_ns: u64,
    ) -> (ClusterReport, QueryTrace, MetricRegistry)
    where
        I: IntoIterator<Item = PinnedQuery>,
    {
        let (report, trace, registry) = self.run_windowed_inner(
            arrivals,
            detail,
            faults,
            window,
            threads,
            ObsRequest::instrumented(online_window_ns),
            None,
        );
        (
            report,
            trace.expect("tracing was requested"),
            registry.expect("online telemetry was requested"),
        )
    }

    /// Per-lane GPC capacities (`lane_gpcs[s]` = shard `s`'s total GPC
    /// budget) — the busy-fraction denominators
    /// [`MetricRegistry::from_trace`] needs to reproduce an observed run's
    /// registry from its trace.
    #[must_use]
    pub fn lane_gpcs(&self) -> Vec<u32> {
        self.shards
            .iter()
            .map(|s| s.budget().total_gpcs as u32)
            .collect()
    }

    /// The event-queue capacity for lane `s`: an explicit hint when one
    /// was provided (call-site override first, then the cluster-level
    /// [`with_lane_capacity`](Self::with_lane_capacity) hints), otherwise
    /// the structural floor — one completion per partition, one
    /// reconfiguration timer, a small dispatch margin.
    fn lane_capacity(&self, s: usize, hints: Option<&[usize]>) -> usize {
        hints
            .or(self.lane_capacity.as_deref())
            .and_then(|h| h.get(s).copied())
            .unwrap_or_else(|| {
                let partitions: usize = self.shards[s].groups().iter().map(Vec::len).sum();
                partitions + 4
            })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_windowed_inner<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        faults: &FaultTimeline,
        window: SyncWindow,
        threads: usize,
        obs: ObsRequest,
        hints: Option<&[usize]>,
    ) -> (ClusterReport, Option<QueryTrace>, Option<MetricRegistry>)
    where
        I: IntoIterator<Item = PinnedQuery>,
    {
        let mut gw = Gateway::new(self, arrivals.into_iter(), faults, window);
        if !obs.is_off() {
            // The gateway records on its own lane, one past the shards
            // (no service events, so its online half needs no capacity).
            gw.trace = Some(ObsSink::for_request(obs, self.shards.len() as u32, 0));
        }
        let mut lanes: Vec<Lane<'_>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let mut engine = ShardEngine::new(shard, detail);
                if !obs.is_off() {
                    engine.set_sink(ObsSink::for_request(
                        obs,
                        s as u32,
                        shard.budget().total_gpcs as u32,
                    ));
                }
                let capacity = self.lane_capacity(s, hints);
                // Commands only queue in lookahead mode; a window's worth
                // of offers is far below the event-queue backlog bound.
                let mailbox = match window {
                    SyncWindow::Lookahead(_) => capacity,
                    SyncWindow::PerEvent => 0,
                };
                Lane::new(s, engine, shard.budget().num_gpus, capacity, mailbox)
            })
            .collect();
        let threads = threads.clamp(1, self.shards.len());
        if threads <= 1 {
            let mut exec = SerialExecutor;
            gw.drive(&mut lanes, &mut exec);
        } else {
            std::thread::scope(|scope| {
                let mut exec = WorkerPool::new(scope, threads);
                gw.drive(&mut lanes, &mut exec);
            });
        }
        gw.finish(lanes)
    }

    /// Like [`run_windowed`](Self::run_windowed) at one thread, but also
    /// measures the run's [`WindowProfile`]: per synchronization window,
    /// how the lane work would bucket onto worker pools of each size in
    /// `thread_counts`. The report is bit-for-bit the `run_windowed`
    /// report (profiling only observes event counters); the profile is
    /// what `bench_megacluster` builds its events/sec-vs-cores curve
    /// from, independent of the benchmarking host's core count.
    #[must_use]
    pub fn run_windowed_profiled<I>(
        &self,
        arrivals: I,
        detail: ReportDetail,
        faults: &FaultTimeline,
        window: SyncWindow,
        thread_counts: &[usize],
    ) -> (ClusterReport, WindowProfile)
    where
        I: IntoIterator<Item = PinnedQuery>,
    {
        let mut gw = Gateway::new(self, arrivals.into_iter(), faults, window);
        let mut lanes: Vec<Lane<'_>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let capacity = self.lane_capacity(s, None);
                let mailbox = match window {
                    SyncWindow::Lookahead(_) => capacity,
                    SyncWindow::PerEvent => 0,
                };
                Lane::new(
                    s,
                    ShardEngine::new(shard, detail),
                    shard.budget().num_gpus,
                    capacity,
                    mailbox,
                )
            })
            .collect();
        let mut exec = ProfilingExecutor::new(thread_counts);
        gw.drive(&mut lanes, &mut exec);
        (gw.finish(lanes).0, exec.into_profile())
    }
}

/// Everything measured during one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Each shard's full run report (records, per-model stats,
    /// reconfigurations), shard order.
    pub per_shard: Vec<MultiRunReport>,
    /// Queries the router sent to each shard.
    pub routed: Vec<u64>,
    /// Fleet-wide latency histogram (union of the shard histograms).
    pub histogram: LatencyHistogram,
    /// Time from first arrival to the last completion on any shard.
    pub makespan: SimDuration,
    /// Completed queries across the fleet divided by the makespan.
    pub achieved_qps: f64,
    /// Every GPU transfer between the batch pool and the shards, in order.
    pub loans: Vec<LoanEvent>,
    /// Every fault event the run applied, in order (empty without a
    /// [`FaultTimeline`]).
    pub faults: Vec<FaultRecord>,
    /// Queries of each model rejected at admission by the [`ShedPolicy`]
    /// (all-zero without one). Conservation invariant 10: every offered
    /// query is exactly served-or-shed — `completed() + shed` reconstructs
    /// the offered count, and a shed query never touches `routed` or any
    /// shard queue.
    pub shed_per_model: Vec<u64>,
    /// Opportunity cost of loaning: the integral of loaned-out GPUs over
    /// simulated time (GPU-seconds the batch pool could not use).
    pub loaned_gpu_seconds: f64,
    /// High-water mark of pending events, summed over the per-shard lane
    /// queues, plus the gateway's pending routing/fault items:
    /// O(total partitions + peak frontend backlog). Unlike the
    /// single-server engine (strictly O(partitions)), the cluster
    /// materializes admitted-but-undispatched queries as pending events —
    /// the price of routing every arrival against the fleet state at its
    /// own arrival instant.
    pub peak_pending_events: usize,
    /// Total simulation work: shard-lane events processed plus gateway
    /// items (arrivals routed or shed, fault events). Invariant under
    /// thread count — the events/sec denominator of the megacluster
    /// scaling bench.
    pub events_processed: u64,
}

impl ClusterReport {
    /// Total queries completed across the fleet.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.histogram.count()
    }

    /// Fleet-wide p95 tail latency, milliseconds (bucket-accurate).
    #[must_use]
    pub fn p95_ms(&self) -> f64 {
        self.histogram.p95_ms()
    }

    /// The worst per-model exact SLA violation rate across every shard —
    /// the metric a latency-bounded cluster throughput search constrains.
    #[must_use]
    pub fn worst_violation_rate(&self) -> f64 {
        self.per_shard
            .iter()
            .map(MultiRunReport::worst_violation_rate)
            .fold(0.0, f64::max)
    }

    /// The worst p95/SLA ratio across every shard and model (≤ 1 means the
    /// whole fleet met its SLAs).
    #[must_use]
    pub fn worst_p95_sla_ratio(&self) -> f64 {
        self.per_shard
            .iter()
            .flat_map(|r| &r.per_model)
            .filter_map(|m| m.sla_ns.map(|sla| m.p95_ms() / (sla as f64 / 1e6)))
            .fold(0.0, f64::max)
    }

    /// Mid-run reconfigurations across the fleet (drift re-plans plus
    /// loan-triggered re-plans).
    #[must_use]
    pub fn total_reconfigs(&self) -> usize {
        self.per_shard.iter().map(|r| r.reconfigs.len()).sum()
    }

    /// Total queries the shed policy rejected at admission.
    #[must_use]
    pub fn total_shed(&self) -> u64 {
        self.shed_per_model.iter().sum()
    }

    /// Fleet-wide latency decomposition: queue-wait and service-time
    /// percentiles over the merged per-shard histograms, plus the total
    /// reslice downtime charged by every reconfiguration on any shard.
    /// O(1) memory and available tracing on or off — the histograms are
    /// always maintained by the dispatch cores.
    #[must_use]
    pub fn breakdown(&self) -> server_metrics::LatencyBreakdown {
        let queue = LatencyHistogram::merged(self.per_shard.iter().map(|r| &r.queue_hist));
        let service = LatencyHistogram::merged(self.per_shard.iter().map(|r| &r.service_hist));
        let reconfig_wait_ns_total = self
            .per_shard
            .iter()
            .flat_map(|r| &r.reconfigs)
            .map(|rc| rc.reslice_delay.as_nanos())
            .sum();
        server_metrics::LatencyBreakdown::from_histograms(&queue, &service, reconfig_wait_ns_total)
    }
}

/// One gateway decision point: an arrival to route (and admit or shed) or
/// a fault-timeline event. These are the **only** instants shards couple;
/// everything between consecutive items is embarrassingly parallel lane
/// work.
enum GatewayItem {
    Route(PinnedQuery),
    Fault(FaultEvent),
}

/// The coordinator of one windowed cluster run: owns every cross-shard
/// decision (routing, shedding, loan ledger, fault bookkeeping, recovery
/// arming) and never touches a lane except through `(time, key)`-stamped
/// [`Command`]s and the window-edge harvest. Lanes own everything else.
struct Gateway<'a, I> {
    cluster: &'a Cluster,
    arrivals: I,
    sync: SyncWindow,
    router: RouterState,
    /// Cluster-level drift detector: one lane per shard × model, fed at
    /// routing time with the traffic each shard actually receives.
    detector: Option<DriftDetector>,
    ledger: Option<LoanLedger>,
    loans: Vec<LoanEvent>,
    /// Integral bookkeeping for the loaned-GPU opportunity cost.
    loan_out_total: usize,
    loan_since: SimTime,
    loaned_gpu_ns: u128,
    routed: Vec<u64>,
    n_models: usize,
    /// Tie-break key sequence + past-clamp clock for routing items.
    route_seq: u64,
    route_clock: SimTime,
    next_route: Option<(SimTime, u64, PinnedQuery)>,
    /// Reused outstanding-load scratch so routing allocates nothing after
    /// the first arrival.
    scratch: Vec<u64>,
    /// Shard liveness: failed shards leave the routing rotation.
    alive: Vec<bool>,
    /// Per shard, which of its base-budget GPU slots are currently failed.
    failed_gpus: Vec<Vec<bool>>,
    /// Per shard × base GPU slot: the active slow-GPU fault's
    /// `factor_milli`, if any. The throttled worker slots live on the lane
    /// (they are what the matching restore un-throttles); the coordinator
    /// mirror only decides double-degrade/restore no-ops and feeds the
    /// degrade-aware loan/shed estimators.
    degraded: Vec<Vec<Option<u32>>>,
    /// Per-shard planned capacity hints (router weights), reused by the
    /// shed policy's projected-delay estimate.
    cap_hint: Vec<f64>,
    /// Per-model count of queries the shed policy rejected at admission.
    shed_per_model: Vec<u64>,
    /// Shards owing a recovery re-plan that has not fired yet (a
    /// reconfiguration was in flight, or the survivor budget cannot host
    /// one GPU per model until a repair).
    pending_recovery: Vec<bool>,
    /// The recovery re-plan id currently armed on each lane, if any —
    /// cleared when the lane reports it fired (window-edge harvest) or
    /// when infeasibility disarms it.
    outstanding_arm: Vec<Option<u64>>,
    arm_seq: u64,
    /// Remaining fault events, time order; the head is primed as the next
    /// fault item, the rest wait.
    fault_queue: VecDeque<(SimTime, FaultEvent)>,
    fault_clock: SimTime,
    next_fault: Option<(SimTime, u64, FaultEvent)>,
    fault_cost: mig_gpu::ResliceCostModel,
    fault_mode: paris_core::ReconfigMode,
    fault_log: Vec<FaultRecord>,
    /// Tie-break key sequence for fault items.
    fault_seq: u64,
    /// Measured-demand state ([`LoanDemandModel::MeasuredBusy`]): the
    /// measurement window width (the loan detector's window), the next
    /// window boundary on the detector's fixed grid, per-shard
    /// `busy_gpc_ns` snapshots with the instant they were taken, and the
    /// last completed window's measured rates (GPU equivalents).
    /// `window = 0` disables the bookkeeping entirely.
    busy_window_ns: u64,
    busy_window_end_ns: u64,
    busy_snap: Vec<u128>,
    busy_snap_at: SimTime,
    busy_rate: Vec<f64>,
    /// Lookahead-mode staleness patches, reset at every window edge:
    /// offers delivered since the edge (so JSQ sees the load it already
    /// routed this window) and shards sent a Replan/Arm since the edge
    /// (so a rebalance defers instead of double-transferring). Always
    /// zero/false in per-event mode, where lane reads are exact.
    out_est: Vec<u64>,
    in_flight_est: Vec<bool>,
    items_processed: u64,
    last_item_at: SimTime,
    /// Gateway-lane observability sink — the retained-trace half, the
    /// online-telemetry half, or both (invariant 12: `None` leaves every
    /// decision path untouched — hooks are a discriminant test only).
    trace: Option<ObsSink>,
}

impl<'a, I: Iterator<Item = PinnedQuery>> Gateway<'a, I> {
    fn new(cluster: &'a Cluster, arrivals: I, faults: &FaultTimeline, sync: SyncWindow) -> Self {
        let n_models = cluster.shards[0].models().len();
        let n = cluster.shards.len();
        let weights: Vec<f64> = cluster
            .shards
            .iter()
            .map(MultiModelServer::capacity_hint_qps)
            .collect();
        let detector = cluster.loan.as_ref().map(|lp| {
            let max_b = cluster
                .shards
                .iter()
                .flat_map(|s| s.models())
                .map(|m| m.table.max_batch())
                .max()
                .expect("at least one model");
            DriftDetector::new(n * n_models, max_b, lp.detector)
        });
        let ledger = cluster.loan.as_ref().map(|lp| {
            LoanLedger::new(
                cluster.shards.iter().map(|s| s.budget()).collect(),
                lp.pool_gpus,
            )
        });
        let busy_window_ns = cluster
            .loan
            .as_ref()
            .filter(|lp| lp.demand_model == LoanDemandModel::MeasuredBusy)
            .map_or(0, |lp| lp.detector.window_ns);
        Gateway {
            cluster,
            arrivals,
            sync,
            cap_hint: weights.clone(),
            router: RouterState::new(cluster.router, weights),
            detector,
            ledger,
            loans: Vec::new(),
            loan_out_total: 0,
            loan_since: SimTime::ZERO,
            loaned_gpu_ns: 0,
            routed: vec![0; n],
            n_models,
            route_seq: 0,
            route_clock: SimTime::ZERO,
            next_route: None,
            scratch: Vec::with_capacity(n),
            alive: vec![true; n],
            failed_gpus: cluster
                .shards
                .iter()
                .map(|s| vec![false; s.budget().num_gpus])
                .collect(),
            degraded: cluster
                .shards
                .iter()
                .map(|s| vec![None; s.budget().num_gpus])
                .collect(),
            shed_per_model: vec![0; n_models],
            pending_recovery: vec![false; n],
            outstanding_arm: vec![None; n],
            arm_seq: 0,
            fault_queue: faults.events().iter().copied().collect(),
            fault_clock: SimTime::ZERO,
            next_fault: None,
            fault_cost: faults.cost,
            fault_mode: faults.mode,
            fault_log: Vec::with_capacity(faults.events().len()),
            fault_seq: 0,
            busy_window_ns,
            busy_window_end_ns: busy_window_ns,
            busy_snap: vec![0; n],
            busy_snap_at: SimTime::ZERO,
            busy_rate: vec![0.0; n],
            out_est: vec![0; n],
            in_flight_est: vec![false; n],
            items_processed: 0,
            last_item_at: SimTime::ZERO,
            trace: None,
        }
    }

    /// Primes the next routing item from the arrival stream (stamped with
    /// the next route key; arrivals out of ascending order clamp forward,
    /// matching the old shared queue's never-backwards rule).
    fn prime_route(&mut self) {
        if let Some((pin, tq)) = self.arrivals.next() {
            let at = SimTime::from_nanos(tq.spec.arrival_ns).max(self.route_clock);
            self.route_clock = at;
            let key = self.route_seq;
            self.route_seq += 1;
            self.next_route = Some((at, key, (pin, tq)));
        }
    }

    /// Primes the fault queue's head as the next fault item.
    fn prime_fault(&mut self) {
        if let Some((at, ev)) = self.fault_queue.pop_front() {
            let at = at.max(self.fault_clock);
            self.fault_clock = at;
            let key = self.fault_seq;
            self.fault_seq += 1;
            self.next_fault = Some((at, key, ev));
        }
    }

    /// The `(time, key)` stamp of the next gateway item, if any.
    fn peek_stamp(&self) -> Option<(SimTime, u64)> {
        let r = self.next_route.as_ref().map(|&(t, k, _)| (t, k));
        let f = self.next_fault.as_ref().map(|&(t, k, _)| (t, k));
        match (r, f) {
            (Some(r), Some(f)) => Some(if r <= f { r } else { f }),
            (a, b) => a.or(b),
        }
    }

    /// Pops the next gateway item in `(time, key)` order (routing items
    /// win exact stamp ties — the one total order both sync modes share)
    /// and primes its successor.
    fn pop_item(&mut self) -> Option<(SimTime, u64, GatewayItem)> {
        let take_route = match (&self.next_route, &self.next_fault) {
            (Some(r), Some(f)) => (r.0, r.1) <= (f.0, f.1),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if take_route {
            let (t, k, pq) = self.next_route.take().expect("checked above");
            self.prime_route();
            Some((t, k, GatewayItem::Route(pq)))
        } else {
            let (t, k, ev) = self.next_fault.take().expect("checked above");
            self.prime_fault();
            Some((t, k, GatewayItem::Fault(ev)))
        }
    }

    /// Hands one command to a lane: applied synchronously in per-event
    /// mode (the lane is already at the decision's instant, so every
    /// later coordinator read sees its effect), mailboxed in lookahead
    /// mode (the lane executes it mid-window at the exact same stamp).
    /// Either way the lane-side code path is identical.
    fn deliver(&mut self, lanes: &mut [Lane<'a>], s: usize, t: SimTime, k: u64, cmd: Command) {
        if let SyncWindow::Lookahead(_) = self.sync {
            match &cmd {
                Command::Offer(_) => self.out_est[s] += 1,
                Command::Replan(_) | Command::Arm(_) => self.in_flight_est[s] = true,
                _ => {}
            }
            lanes[s].mailbox.push_back((pack_stamp(t, k), cmd));
        } else {
            lanes[s].apply(t, cmd);
        }
    }

    /// Shard `s`'s outstanding-query count as the coordinator knows it:
    /// exact in per-event mode, edge-of-window plus own offers in
    /// lookahead mode.
    fn outstanding(&self, lanes: &[Lane<'a>], s: usize) -> u64 {
        lanes[s].engine.outstanding_queries() + self.out_est[s]
    }

    /// Whether shard `s` should be treated as mid-reconfiguration for
    /// deferral decisions (exact in per-event mode; in lookahead mode a
    /// Replan/Arm already sent this window counts).
    fn in_flight(&self, lanes: &[Lane<'a>], s: usize) -> bool {
        self.in_flight_est[s] || lanes[s].engine.reconfig_in_flight()
    }

    /// Rolls the measured-busy window forward when `now` crosses a window
    /// boundary: the completed span's GPC-weighted busy fractions become
    /// the current measured demand rates. Called per arrival (a cheap
    /// comparison when the measured model is off). Boundaries sit on the
    /// **drift detector's fixed tumbling grid**, so at the very arrival
    /// that closes a detector window — the only instant a loan decision
    /// can fire — the measurement describes that same window, not a stale
    /// drifted one.
    fn roll_busy_window(&mut self, lanes: &[Lane<'a>], now: SimTime) {
        if self.busy_window_ns == 0 || now.as_nanos() < self.busy_window_end_ns {
            return;
        }
        let dt = (now - self.busy_snap_at).as_nanos();
        for (s, lane) in lanes.iter().enumerate() {
            let busy = lane.engine.busy_gpc_ns();
            let delta = busy.saturating_sub(self.busy_snap[s]);
            self.busy_rate[s] = delta as f64 / dt as f64 / COMPUTE_SLICES as f64;
            self.busy_snap[s] = busy;
        }
        self.busy_snap_at = now;
        while self.busy_window_end_ns <= now.as_nanos() {
            self.busy_window_end_ns += self.busy_window_ns;
        }
    }

    /// Handles one arrival at its arrival instant: routes it to a shard
    /// (its pinned shard if alive, the router otherwise), applies brownout
    /// admission control against that shard's projected delay, feeds the
    /// loan controller's detector with the routed load, acts on any drift
    /// it flags (causal — the window-closing arrival exists *now*), and
    /// delivers the query to the chosen shard's frontend.
    ///
    /// A shed query stops here: it never counts as routed, never reaches a
    /// queue, and never feeds the drift detector — admission control acts
    /// strictly before the query becomes load (invariant 10:
    /// served-or-shed, nothing in between).
    fn offer(
        &mut self,
        lanes: &mut [Lane<'a>],
        pin: Option<usize>,
        tq: TaggedQuerySpec,
        now: SimTime,
        key: u64,
    ) {
        self.roll_busy_window(lanes, now);
        let (s, pinned) = match pin {
            Some(p) if p < lanes.len() && self.alive[p] => (p, true),
            _ => {
                self.scratch.clear();
                for (s, lane) in lanes.iter().enumerate() {
                    self.scratch
                        .push(lane.engine.outstanding_queries() + self.out_est[s]);
                }
                (self.router.pick(&self.scratch, &self.alive), false)
            }
        };
        if let Some(policy) = self.cluster.shed.as_ref() {
            let sla = self
                .cluster
                .shards
                .get(s)
                .and_then(|shard| shard.models().get(tq.model))
                .and_then(|m| m.sla_ns);
            if let Some(sla_ns) = sla {
                if policy.should_shed(tq.model, self.estimated_delay_ns(lanes, s), sla_ns) {
                    self.shed_per_model[tq.model] += 1;
                    if let Some(tr) = &mut self.trace {
                        tr.record(
                            now,
                            key,
                            TraceEvent::Shed {
                                model: tq.model,
                                shard: s,
                            },
                        );
                    }
                    return;
                }
            }
        }
        self.routed[s] += 1;
        if let Some(tr) = &mut self.trace {
            tr.record(
                now,
                key,
                TraceEvent::RouteDecision {
                    model: tq.model,
                    shard: s,
                    pinned,
                },
            );
        }
        let report = self.detector.as_mut().and_then(|det| {
            det.observe(
                s * self.n_models + tq.model,
                tq.spec.arrival_ns,
                tq.spec.batch,
            )
        });
        if report.is_some() {
            self.rebalance(lanes, now, key);
        }
        self.deliver(lanes, s, now, key, Command::Offer(tq));
    }

    /// Estimated demand of shard `s` in full-GPU equivalents **at live
    /// efficiency**: each model's observed rate divided by the throughput
    /// one GPU's worth of its *currently serving* partition mix delivers
    /// at the observed mean batch. A shard offered exactly its current
    /// capacity therefore estimates demand ≈ its GPU count — the scale the
    /// [`LoanPolicy`] thresholds are written against. (Naive full-GPU
    /// equivalents — rate × largest-partition latency — would be off by
    /// the whole MIG packing gain, which exceeds 5× for the small models.)
    ///
    /// The efficiency reference is the engine's **live** group, not the
    /// initial plan: after heavy re-planning the planned mix no longer
    /// describes what is running, and normalizing against it would skew
    /// borrow/reclaim decisions by the drift between the two mixes. A
    /// group momentarily dark mid-reconfiguration (no live instances)
    /// falls back to the initial plan rather than dividing by zero.
    fn shard_demand_gpus(&self, lanes: &[Lane<'a>], s: usize) -> f64 {
        let detector = self.detector.as_ref().expect("demand needs the detector");
        let rates = detector.observed_rates_qps();
        let shard = &self.cluster.shards[s];
        let live = lanes[s].engine.live_groups();
        shard
            .models()
            .iter()
            .enumerate()
            .map(|(m, spec)| {
                let lane = s * self.n_models + m;
                let dist = detector
                    .observed_distribution(lane)
                    .unwrap_or_else(|| spec.dist.clone());
                let group: &[mig_gpu::ProfileSize] = if live[m].is_empty() {
                    &shard.groups()[m]
                } else {
                    &live[m]
                };
                let group_qps = spec.table.capacity_qps(group, &dist);
                let group_gpcs: usize = group.iter().map(|&size| size.gpcs()).sum();
                let per_gpu_qps = group_qps * mig_gpu::COMPUTE_SLICES as f64 / group_gpcs as f64;
                rates.get(lane).copied().unwrap_or(0.0) / per_gpu_qps
            })
            .sum()
    }

    /// Number of shard `s`'s base-budget GPUs currently failed.
    fn failed_count(&self, s: usize) -> usize {
        self.failed_gpus[s].iter().filter(|&&f| f).count()
    }

    /// `budget` with shard `s`'s failed GPUs removed (whole GPUs at
    /// [`COMPUTE_SLICES`] GPCs each). `None` when no whole GPU survives.
    fn minus_failed(&self, s: usize, budget: GpcBudget) -> Option<GpcBudget> {
        let failed = self.failed_count(s);
        if failed == 0 {
            return Some(budget);
        }
        if budget.num_gpus <= failed {
            return None;
        }
        let gpus = budget.num_gpus - failed;
        let gpcs = budget
            .total_gpcs
            .saturating_sub(failed * COMPUTE_SLICES)
            .clamp(1, gpus * COMPUTE_SLICES);
        Some(GpcBudget::new(gpcs, gpus))
    }

    /// The budget shard `s` actually serves with right now: its base share
    /// plus held loans, minus failed GPUs. `None` when every GPU is down.
    fn effective_budget(&self, s: usize) -> Option<GpcBudget> {
        let held = match &self.ledger {
            Some(l) => l.budget_with_loans(s, l.loaned[s]),
            None => self.cluster.shards[s].budget(),
        };
        self.minus_failed(s, held)
    }

    /// Active slow-GPU factors on shard `s`'s surviving base slots (a
    /// failed slot's degrade no longer throttles anything — the GPU is
    /// gone, not slow).
    fn active_degrades(&self, s: usize) -> impl Iterator<Item = u32> + '_ {
        self.degraded[s]
            .iter()
            .zip(self.failed_gpus[s].iter())
            .filter(|&(_, &failed)| !failed)
            .filter_map(|(&d, _)| d)
    }

    /// Projected queueing delay on shard `s` for admission control:
    /// outstanding queries over the shard's planned capacity, scaled by
    /// the fraction of its base GPUs still effective — where "effective"
    /// is degrade-aware: a GPU throttled 4× contributes a quarter of a
    /// GPU ([`degraded_capacity_gpus`]). Deliberately coarse — the shed
    /// policy only needs a monotone overload signal, and this one is O(1)
    /// per arrival. A shard with no surviving GPU projects infinite delay
    /// (everything sheddable sheds until repair).
    fn estimated_delay_ns(&self, lanes: &[Lane<'a>], s: usize) -> f64 {
        let Some(budget) = self.effective_budget(s) else {
            return f64::INFINITY;
        };
        let base_gpus = self.cluster.shards[s].budget().num_gpus.max(1);
        let cap_gpus = degraded_capacity_gpus(budget.num_gpus, self.active_degrades(s));
        let cap_qps = self.cap_hint[s] * cap_gpus / base_gpus as f64;
        if cap_qps <= 0.0 {
            return f64::INFINITY;
        }
        self.outstanding(lanes, s) as f64 / cap_qps * 1e9
    }

    /// Per-shard demand in full-GPU equivalents under the policy's
    /// [`LoanDemandModel`]: the analytical live-efficiency estimate, or
    /// the last completed measurement window's busy fractions (kept fresh
    /// by [`roll_busy_window`](Self::roll_busy_window)) — inflated by the
    /// active degrade factors ([`degrade_inflated_demand`]), since a
    /// throttled shard's silicon-busy measurement understates how many
    /// *healthy* GPUs its load actually needs.
    fn demand_estimates(&mut self, lanes: &[Lane<'a>], now: SimTime) -> Vec<f64> {
        let policy = self.cluster.loan.as_ref().expect("demand needs a policy");
        let n = lanes.len();
        match policy.demand_model {
            LoanDemandModel::PlannedEfficiency => {
                (0..n).map(|s| self.shard_demand_gpus(lanes, s)).collect()
            }
            LoanDemandModel::MeasuredBusy => {
                self.roll_busy_window(lanes, now);
                (0..n)
                    .map(|s| {
                        let live = self.cluster.shards[s]
                            .budget()
                            .num_gpus
                            .saturating_sub(self.failed_count(s));
                        let effective = degraded_capacity_gpus(live, self.active_degrades(s));
                        degrade_inflated_demand(self.busy_rate[s], live, effective)
                    })
                    .collect()
            }
        }
    }

    /// Acts on the freshest trusted detector window: reclaims first
    /// (freeing the pool), then lends to overloaded shards. Shards
    /// mid-reconfiguration defer — the detector keeps its old baseline so
    /// the next window re-triggers and the deferred transfer gets another
    /// chance. Dead shards are skipped (they drain until repair), and a
    /// shard's owned/held GPU counts are failure-adjusted so lost capacity
    /// reads as a genuine shortfall the pool can backfill.
    fn rebalance(&mut self, lanes: &mut [Lane<'a>], now: SimTime, key: u64) {
        let demand = self.demand_estimates(lanes, now);
        let policy = self
            .cluster
            .loan
            .as_ref()
            .expect("rebalance requires a loan policy");
        let (overload, underload) = (policy.overload_ratio, policy.underload_ratio);
        let _ = (overload, underload);
        let mut deferred = false;
        // Pass 0 executes returns, pass 1 borrows — so one window's
        // reclaims can fund its loans.
        for pass in 0..2 {
            for (s, &shard_demand) in demand.iter().enumerate() {
                if !self.alive[s] {
                    continue;
                }
                let failed = self.failed_count(s);
                let policy = self.cluster.loan.as_ref().expect("policy present");
                let ledger = self.ledger.as_ref().expect("ledger exists with policy");
                let base = ledger.base[s].num_gpus - failed;
                let current = base + ledger.loaned[s];
                let target = policy.target_gpus(shard_demand, base, current, ledger.pool_free);
                let delta = target as i64 - current as i64;
                if (pass == 0 && delta >= 0) || (pass == 1 && delta <= 0) {
                    continue;
                }
                if self.in_flight(lanes, s) {
                    deferred = true;
                    continue;
                }
                self.apply_transfer(lanes, s, delta, now, key);
            }
        }
        if !deferred {
            self.detector
                .as_mut()
                .expect("rebalance implies detector")
                .rebaseline();
        }
    }

    /// Moves `delta` GPUs between the pool and shard `s` and re-plans the
    /// shard onto its new budget, charging the reslice plus the per-GPU
    /// handover cost (a transfer the new plan ignores interrupts nothing
    /// and charges nothing — the moved GPU just sits in the new pool).
    /// Declined — no ledger mutation, no re-plan — when the
    /// failure-adjusted result could not host one GPU and one GPC per
    /// model.
    fn apply_transfer(
        &mut self,
        lanes: &mut [Lane<'a>],
        s: usize,
        delta: i64,
        now: SimTime,
        key: u64,
    ) {
        {
            let ledger = self.ledger.as_ref().expect("ledger exists with policy");
            let held = ledger.budget_with_loans(
                s,
                (ledger.loaned[s] as i64 + delta)
                    .try_into()
                    .expect("loans never go negative"),
            );
            match self.minus_failed(s, held) {
                Some(b) if b.num_gpus >= self.n_models && b.total_gpcs >= self.n_models => {}
                _ => return,
            }
        }
        let policy = self.cluster.loan.as_ref().expect("loan policy present");
        let detector = self.detector.as_ref().expect("transfer implies detector");
        let specs = self.cluster.shards[s].models();
        // Budget shares from the observed traffic — the same
        // `ModelSpec::demand_weight` the shard's own drift re-planner
        // splits budgets with.
        let mut weights = Vec::with_capacity(specs.len());
        let mut dists: Vec<BatchDistribution> = Vec::with_capacity(specs.len());
        for (m, spec) in specs.iter().enumerate() {
            let lane = s * self.n_models + m;
            let dist = detector
                .observed_distribution(lane)
                .unwrap_or_else(|| spec.dist.clone());
            let rate = detector
                .observed_rates_qps()
                .get(lane)
                .copied()
                .unwrap_or(0.0);
            weights.push(spec.demand_weight(&dist, rate));
            dists.push(dist);
        }

        // Opportunity-cost integral: close the period at the old loan
        // level before the transfer changes it.
        self.loaned_gpu_ns +=
            self.loan_out_total as u128 * u128::from((now - self.loan_since).as_nanos());
        self.loan_since = now;
        let moved = delta.unsigned_abs() as usize;
        self.loan_out_total = if delta > 0 {
            self.loan_out_total + moved
        } else {
            self.loan_out_total - moved
        };

        let cost = policy.cost;
        let mode = policy.mode;
        let ledger = self.ledger.as_mut().expect("ledger exists with policy");
        let held = ledger.transfer(s, delta);
        let pool_free_after = ledger.pool_free;
        let budget = self
            .minus_failed(s, held)
            .expect("feasibility was checked before the transfer");
        let extra = SimDuration::from_nanos(cost.gpu_handover_ns(moved));
        self.deliver(
            lanes,
            s,
            now,
            key,
            Command::Replan(ArmedReplan {
                id: 0,
                budget,
                weights,
                dists,
                cost,
                extra_downtime: extra,
                mode,
            }),
        );
        if let Some(tr) = &mut self.trace {
            tr.record(
                now,
                key,
                TraceEvent::Loan {
                    shard: s,
                    gpus_delta: delta,
                    pool_free_after,
                },
            );
        }
        self.loans.push(LoanEvent {
            at: now,
            shard: s,
            gpus_delta: delta,
            pool_free_after,
        });
    }

    /// Applies one fault-timeline event. A capacity event is also a loan
    /// trigger in its own right: with a loan policy the controller
    /// rebalances immediately — the batch pool backfills a failure without
    /// waiting for statistical drift (steady traffic routed around a dead
    /// GPU may never drift enough to re-trigger the detector). The
    /// rebalance runs **before** the shard's own recovery re-plan so a
    /// backfill borrow and the recovery land in one transition; the armed
    /// recovery afterwards is then a no-op (or the fallback when no
    /// transfer engaged).
    fn on_fault(&mut self, lanes: &mut [Lane<'a>], event: FaultEvent, now: SimTime, key: u64) {
        let log_idx = self.fault_log.len();
        // Requeue counts are harvested from the lane that executes the
        // kill and patched into this record at the next window edge.
        self.fault_log.push(FaultRecord {
            at: now,
            event,
            requeued: 0,
        });
        if let Some(tr) = &mut self.trace {
            let (kind, shard, gpu, factor_milli) = match event {
                FaultEvent::GpuFail { shard, gpu } => (FaultKind::GpuFail, shard, gpu, 0),
                FaultEvent::GpuRepair { shard, gpu } => (FaultKind::GpuRepair, shard, gpu, 0),
                FaultEvent::GpuDegrade {
                    shard,
                    gpu,
                    factor_milli,
                } => (FaultKind::GpuDegrade, shard, gpu, factor_milli),
                FaultEvent::GpuRestore { shard, gpu } => (FaultKind::GpuRestore, shard, gpu, 0),
                FaultEvent::ShardFail { shard } => (FaultKind::ShardFail, shard, 0, 0),
                FaultEvent::ShardRepair { shard } => (FaultKind::ShardRepair, shard, 0, 0),
            };
            tr.record(
                now,
                key,
                TraceEvent::Fault {
                    kind,
                    shard,
                    gpu,
                    factor_milli,
                },
            );
        }
        match event {
            FaultEvent::GpuFail { shard, gpu } => {
                // Double-fail or unknown slot: a genuine no-op — no kill,
                // no rebalance, no re-plan, no divergence from the
                // single-fail run.
                if self.mark_failed(shard, gpu) {
                    self.deliver(lanes, shard, now, key, Command::Kill { gpu, log_idx });
                    if self.cluster.loan.is_some() {
                        self.rebalance(lanes, now, key);
                    }
                    self.request_recovery(lanes, shard, now, key);
                }
            }
            FaultEvent::GpuRepair { shard, gpu } => {
                if self.mark_repaired(shard, gpu) {
                    if self.cluster.loan.is_some() {
                        self.rebalance(lanes, now, key);
                    }
                    self.request_recovery(lanes, shard, now, key);
                }
            }
            FaultEvent::GpuDegrade {
                shard,
                gpu,
                factor_milli,
            } => {
                // Capacity is not lost, only slowed: no rebalance, no
                // recovery re-plan — a degrade-aware dispatcher steers
                // around the slow instances on its own. Double-degrades
                // and unknown slots are no-ops.
                if shard < self.degraded.len()
                    && gpu < self.degraded[shard].len()
                    && self.degraded[shard][gpu].is_none()
                {
                    self.degraded[shard][gpu] = Some(factor_milli);
                    self.deliver(
                        lanes,
                        shard,
                        now,
                        key,
                        Command::Degrade { gpu, factor_milli },
                    );
                }
            }
            FaultEvent::GpuRestore { shard, gpu } => {
                if shard < self.degraded.len()
                    && gpu < self.degraded[shard].len()
                    && self.degraded[shard][gpu].take().is_some()
                {
                    self.deliver(lanes, shard, now, key, Command::Restore { gpu });
                }
            }
            FaultEvent::ShardFail { shard } => {
                // A drain, not a kill: the router stops sending traffic
                // and the shard serves out what it already holds.
                if shard < self.alive.len() {
                    self.alive[shard] = false;
                }
                if self.cluster.loan.is_some() {
                    self.rebalance(lanes, now, key);
                }
            }
            FaultEvent::ShardRepair { shard } => {
                if shard < self.alive.len() && !self.alive[shard] {
                    self.alive[shard] = true;
                    if self.cluster.loan.is_some() {
                        self.rebalance(lanes, now, key);
                    }
                    // Rejoin with a fresh plan for the traffic observed
                    // during the outage (a no-op if PARIS lands on the
                    // running layout).
                    self.request_recovery(lanes, shard, now, key);
                }
            }
        }
    }

    /// Marks a base GPU slot failed. Unknown slots and double-fails return
    /// `false` — nothing changed, so the caller must not react either.
    fn mark_failed(&mut self, s: usize, gpu: usize) -> bool {
        if s >= self.failed_gpus.len()
            || gpu >= self.failed_gpus[s].len()
            || self.failed_gpus[s][gpu]
        {
            return false;
        }
        self.failed_gpus[s][gpu] = true;
        true
    }

    /// The failed GPU returns: restores the budget slot (the caller
    /// re-plans next). Repairs of healthy slots are no-ops (`false`).
    fn mark_repaired(&mut self, s: usize, gpu: usize) -> bool {
        if s >= self.failed_gpus.len()
            || gpu >= self.failed_gpus[s].len()
            || !self.failed_gpus[s][gpu]
        {
            return false;
        }
        self.failed_gpus[s][gpu] = false;
        true
    }

    /// Marks shard `s` as owing a recovery re-plan and (re-)arms the lane
    /// with a fresh payload — the budget or traffic picture just changed,
    /// so any previously armed re-plan is stale.
    fn request_recovery(&mut self, lanes: &mut [Lane<'a>], s: usize, now: SimTime, key: u64) {
        self.pending_recovery[s] = true;
        self.arm_recovery(lanes, s, now, key, true);
    }

    /// Arms (or re-arms, with `force`) shard `s`'s pending recovery: an
    /// owned re-plan payload the lane fires the moment no reconfiguration
    /// is in flight — after any of its local events, exactly where the
    /// sequential engine's recovery poke retried. Infeasible recoveries
    /// (the survivor budget cannot host one GPU and one GPC per model)
    /// disarm instead: until a repair or a loan changes the budget, the
    /// shard keeps serving on what survives and the recovery stays owed.
    fn arm_recovery(
        &mut self,
        lanes: &mut [Lane<'a>],
        s: usize,
        now: SimTime,
        key: u64,
        force: bool,
    ) {
        if !self.pending_recovery[s] || (!force && self.outstanding_arm[s].is_some()) {
            return;
        }
        let feasible = match self.effective_budget(s) {
            Some(b) => b.num_gpus >= self.n_models && b.total_gpcs >= self.n_models,
            None => false,
        };
        if !feasible {
            if self.outstanding_arm[s].take().is_some() {
                self.deliver(lanes, s, now, key, Command::Disarm);
            }
            return;
        }
        let budget = self.effective_budget(s).expect("feasibility checked");
        let specs = self.cluster.shards[s].models();
        let mut weights = Vec::with_capacity(specs.len());
        let mut dists: Vec<BatchDistribution> = Vec::with_capacity(specs.len());
        for (m, spec) in specs.iter().enumerate() {
            match &self.detector {
                Some(det) => {
                    let lane = s * self.n_models + m;
                    let dist = det
                        .observed_distribution(lane)
                        .unwrap_or_else(|| spec.dist.clone());
                    let rate = det.observed_rates_qps().get(lane).copied().unwrap_or(0.0);
                    weights.push(spec.demand_weight(&dist, rate));
                    dists.push(dist);
                }
                None => {
                    weights.push(spec.weight);
                    dists.push(spec.dist.clone());
                }
            }
        }
        self.arm_seq += 1;
        let id = self.arm_seq;
        self.outstanding_arm[s] = Some(id);
        self.deliver(
            lanes,
            s,
            now,
            key,
            Command::Arm(ArmedReplan {
                id,
                budget,
                weights,
                dists,
                cost: self.fault_cost,
                extra_downtime: SimDuration::ZERO,
                mode: self.fault_mode,
            }),
        );
    }

    /// Arms any pending-but-unarmed recovery whose feasibility flipped as
    /// a side effect of this gateway item (a loan transfer grew the
    /// survivor budget, say) — the windowed sibling of the sequential
    /// engine's retry-on-every-event poke.
    fn sweep_recoveries(&mut self, lanes: &mut [Lane<'a>], now: SimTime, key: u64) {
        for s in 0..lanes.len() {
            if self.pending_recovery[s] && self.outstanding_arm[s].is_none() {
                self.arm_recovery(lanes, s, now, key, false);
            }
        }
    }

    /// Collects what the lanes did since the last synchronization point:
    /// requeue counts from executed kills (patched into the fault log) and
    /// fired recovery ids (clearing the pending/armed bookkeeping).
    fn harvest(&mut self, lanes: &mut [Lane<'a>]) {
        for lane in lanes.iter_mut() {
            for (idx, requeued) in lane.requeue_patches.drain(..) {
                self.fault_log[idx].requeued += requeued;
            }
            for id in lane.fired.drain(..) {
                if self.outstanding_arm[lane.shard] == Some(id) {
                    self.outstanding_arm[lane.shard] = None;
                    self.pending_recovery[lane.shard] = false;
                }
            }
        }
    }

    /// Processes one gateway item at its stamp.
    fn process(&mut self, lanes: &mut [Lane<'a>], t: SimTime, k: u64, item: GatewayItem) {
        self.items_processed += 1;
        self.last_item_at = self.last_item_at.max(t);
        match item {
            GatewayItem::Route((pin, tq)) => self.offer(lanes, pin, tq, t, k),
            GatewayItem::Fault(ev) => self.on_fault(lanes, ev, t, k),
        }
    }

    /// The run loop: alternate lane advancement (possibly on worker
    /// threads) with gateway decisions, in the sync mode's window
    /// structure, then drain the lanes to completion.
    fn drive(&mut self, lanes: &mut Vec<Lane<'a>>, exec: &mut dyn LaneExecutor<'a>) {
        self.prime_route();
        self.prime_fault();
        match self.sync {
            SyncWindow::PerEvent => {
                while let Some((t, k, item)) = self.pop_item() {
                    // Every lane reaches exactly this decision's stamp, so
                    // each coordinator read below is the sequential
                    // shared-queue value.
                    exec.advance_all(lanes, (t, k));
                    self.harvest(lanes);
                    self.process(lanes, t, k, item);
                    self.harvest(lanes);
                    self.sweep_recoveries(lanes, t, k);
                }
            }
            SyncWindow::Lookahead(width) => {
                let w = width.as_nanos().max(1);
                while let Some((first, _)) = self.peek_stamp() {
                    // The window on the absolute grid containing the next
                    // item; empty windows are skipped wholesale.
                    let edge_ns = (first.as_nanos() / w) * w;
                    let end_ns = edge_ns.saturating_add(w);
                    exec.advance_all(lanes, (SimTime::from_nanos(edge_ns), 0));
                    self.harvest(lanes);
                    self.out_est.iter_mut().for_each(|o| *o = 0);
                    self.in_flight_est.iter_mut().for_each(|f| *f = false);
                    // All of this window's decisions fire against the
                    // edge state (plus the staleness patches); their
                    // commands execute mid-window at exact stamps when
                    // the lanes next advance.
                    while let Some((t, _)) = self.peek_stamp() {
                        if t.as_nanos() >= end_ns {
                            break;
                        }
                        let (t, k, item) = self.pop_item().expect("peeked above");
                        self.process(lanes, t, k, item);
                        self.sweep_recoveries(lanes, t, k);
                    }
                }
            }
        }
        exec.advance_all(lanes, (SimTime::MAX, u64::MAX));
        self.harvest(lanes);
    }

    /// Assembles the report (and, when observing, the merged trace and/or
    /// online metric registry) after the final drain.
    fn finish(
        mut self,
        lanes: Vec<Lane<'a>>,
    ) -> (ClusterReport, Option<QueryTrace>, Option<MetricRegistry>) {
        let end = lanes
            .iter()
            .map(|l| l.sim.now())
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.last_item_at);
        self.loaned_gpu_ns +=
            self.loan_out_total as u128 * u128::from((end - self.loan_since).as_nanos());
        // The gateway holds at most one primed route and one primed fault
        // alongside the lane queues.
        let peak: usize = lanes.iter().map(|l| l.sim.peak_pending()).sum::<usize>() + 2;
        let events: u64 =
            lanes.iter().map(|l| l.sim.events_processed()).sum::<u64>() + self.items_processed;
        // Split each lane's sink into its retained-trace and online
        // halves: recorders merge into one global trace, online lanes
        // merge (in lane order) into the metric registry.
        let mut recorders: Vec<FlightRecorder> = Vec::new();
        let mut online: Vec<OnlineLane> = Vec::new();
        if let Some(sink) = self.trace.take() {
            recorders.extend(sink.trace);
            online.extend(sink.online);
        }
        let traced = !recorders.is_empty();
        let per_shard: Vec<MultiRunReport> = lanes
            .into_iter()
            .map(|mut l| {
                let lane_peak = l.sim.peak_pending();
                if let Some(sink) = l.engine.take_sink() {
                    recorders.extend(sink.trace);
                    online.extend(sink.online);
                }
                l.engine.finish(lane_peak)
            })
            .collect();
        let histogram = LatencyHistogram::merged(per_shard.iter().map(|r| &r.histogram));
        let makespan = per_shard
            .iter()
            .map(|r| r.makespan)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let makespan_s = makespan.as_secs_f64();
        let completed = histogram.count();
        let report = ClusterReport {
            routed: self.routed,
            shed_per_model: self.shed_per_model,
            histogram,
            makespan,
            achieved_qps: if makespan_s > 0.0 {
                completed as f64 / makespan_s
            } else {
                0.0
            },
            loans: self.loans,
            faults: self.fault_log,
            loaned_gpu_seconds: self.loaned_gpu_ns as f64 / 1e9,
            peak_pending_events: peak,
            events_processed: events,
            per_shard,
        };
        let trace = traced.then(|| QueryTrace::merge(recorders));
        let registry = (!online.is_empty()).then(|| {
            let window_ns = online[0].window_ns();
            merge_online(window_ns, online, &self.cluster.lane_gpcs())
        });
        (report, trace, registry)
    }
}
