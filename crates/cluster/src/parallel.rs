//! Shard lanes, deterministic mailboxes and the bounded worker pool behind
//! the windowed cluster engine.
//!
//! The cluster's shards only couple at gateway decisions — routing, loans,
//! shedding, faults — which all happen on the coordinator. Everything else
//! a shard does is local, so each shard runs as a [`Lane`]: its own
//! [`ShardEngine`] over its own event queue. The coordinator advances every
//! lane up to a synchronization bound (a `(time, key)` stamp), applies the
//! gateway decisions as [`Command`]s at their exact stamps, and repeats.
//!
//! Two properties make the result bit-for-bit reproducible at any thread
//! count (ARCHITECTURE.md invariant 11):
//!
//! * a lane's advancement is a pure function of `(lane state, bound,
//!   mailbox)` — no lane ever reads another lane or the coordinator;
//! * commands are ordered by the same `(time, key)` stamps the event
//!   queues already use, with command-before-event at equal stamps, never
//!   by thread arrival.
//!
//! The worker pool therefore only changes *where* a lane advances, not
//! *what* it computes. Observability rides the same structure: each lane's
//! `ObsSink` (flight recorder and/or online metric accumulator) is private
//! lane state fed from the lane's own hooks in its own push order, so a
//! traced or instrumented run parallelizes identically — the coordinator
//! only merges the per-lane partials (trace records by `(time, key, lane,
//! seq)`, online aggregates in lane order) after the run, which is how the
//! trace, the online registry (invariant 13), and the report all stay
//! thread-count invariant.

use std::collections::VecDeque;
use std::sync::mpsc;

use des_engine::{pack_stamp, unpack_time, SimDuration, SimTime, Simulation};
use inference_server::{ReplanRequest, ShardEngine, ShardEvent};
use inference_workload::{BatchDistribution, TaggedQuerySpec};
use mig_gpu::{ProfileSize, ResliceCostModel};
use paris_core::{pack_gpus, GpcBudget, ReconfigMode};

/// How the windowed cluster engine synchronizes its shard lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncWindow {
    /// One synchronization window per gateway event: every lane advances to
    /// exactly the next routing/fault decision's `(time, key)` stamp before
    /// the coordinator acts, so every gateway read (queue depths for JSQ,
    /// busy integrals, in-flight reconfigurations) is exact. This
    /// reproduces the shared-event-queue sequential order precisely — it is
    /// the default mode, and `CLUSTER_THREADS` only changes who advances
    /// the lanes, never the result.
    PerEvent,
    /// Conservative lookahead windows of the given width on an absolute
    /// grid: the coordinator makes **all** gateway decisions for a window
    /// at its leading edge (queue-depth and busy reads are up to one window
    /// stale — the modeled route-hop information latency), then the lanes
    /// execute the window's arrivals and fault commands at their exact
    /// stamps, in parallel. Deterministic at any thread count, but *not*
    /// equal to [`PerEvent`](SyncWindow::PerEvent): the staleness is a
    /// modeling choice, pinned separately. The width should be the minimum
    /// cross-shard information latency (route hop + decision grid).
    Lookahead(SimDuration),
}

/// An owned re-plan payload — [`ReplanRequest`] with the borrows resolved,
/// so the coordinator can mail it into a lane that fires it later.
#[derive(Debug, Clone)]
pub(crate) struct ArmedReplan {
    /// Monotone per-run id; a lane ignores stale re-arms (`id` at or below
    /// the last fired id) that crossed a window boundary in flight.
    pub id: u64,
    pub budget: GpcBudget,
    pub weights: Vec<f64>,
    pub dists: Vec<BatchDistribution>,
    pub cost: ResliceCostModel,
    pub extra_downtime: SimDuration,
    pub mode: ReconfigMode,
}

impl ArmedReplan {
    fn as_request(&self) -> ReplanRequest<'_> {
        ReplanRequest {
            budget: self.budget,
            weights: &self.weights,
            dists: &self.dists,
            cost: &self.cost,
            extra_downtime: self.extra_downtime,
            mode: self.mode,
        }
    }
}

/// One gateway decision delivered to a lane, executed at its exact
/// `(time, key)` stamp during lane advancement.
#[derive(Debug)]
pub(crate) enum Command {
    /// A routed (and admitted) arrival enters this shard's frontend.
    Offer(TaggedQuerySpec),
    /// Adopt a new budget now (a capacity loan/reclaim). If the lane
    /// started a reconfiguration the coordinator's edge-stale in-flight
    /// read missed, the in-flight transition aborts first — the ledger
    /// already moved the GPUs, so the budget must be adopted either way.
    Replan(ArmedReplan),
    /// A GPU failure: abort any in-flight reconfiguration, pack the live
    /// layout into physical-GPU bins, kill bin `gpu`'s instances and record
    /// how many queries requeued against `log_idx` in the fault log.
    Kill { gpu: usize, log_idx: usize },
    /// A slow-GPU fault: throttle the instances packed on bin `gpu` by
    /// `factor_milli / 1000` and remember the victims for the restore.
    Degrade { gpu: usize, factor_milli: u32 },
    /// The slow GPU recovered: un-throttle the recorded victims.
    Restore { gpu: usize },
    /// Arm a recovery re-plan to fire as soon as no reconfiguration is in
    /// flight (retried after every local event, exactly like the
    /// sequential engine's recovery poke).
    Arm(ArmedReplan),
    /// Recovery became infeasible (e.g. a second failure shrank the
    /// survivor budget below one GPU per model): drop any armed re-plan.
    Disarm,
}

/// First-fit-descending packing of the live layout into physical-GPU bins
/// of worker slots, per model group (groups never share a GPU) — the shared
/// deterministic convention for which instances a GPU fault hits.
fn gpu_bins(engine: &ShardEngine<'_>) -> Vec<Vec<usize>> {
    let mut bins: Vec<Vec<usize>> = Vec::new();
    for group in engine.live_members() {
        let sizes: Vec<ProfileSize> = group.iter().map(|&(_, size)| size).collect();
        for bin in pack_gpus(&sizes) {
            bins.push(bin.into_iter().map(|i| group[i].0).collect());
        }
    }
    bins
}

/// One shard's independent execution lane: the engine, its private event
/// queue, the command mailbox, and the cross-window recovery/fault state
/// the coordinator harvests at window edges.
pub(crate) struct Lane<'a> {
    pub shard: usize,
    pub engine: ShardEngine<'a>,
    pub sim: Simulation<ShardEvent>,
    /// Commands stamped with the **packed** `(time << 64) | key` stamp the
    /// event queues order by ([`pack_stamp`]), non-decreasing — the
    /// deterministic mailbox. The coordinator packs each command's stamp
    /// once at delivery; the merge loop in [`advance`](Lane::advance) then
    /// compares single integers against the lane queue's own packed front.
    /// Only used in [`SyncWindow::Lookahead`]; per-event windows apply
    /// commands synchronously through the same code path.
    pub mailbox: VecDeque<(u128, Command)>,
    /// Armed recovery re-plan waiting for the in-flight transition to end.
    armed: Option<ArmedReplan>,
    /// Highest recovery id this lane ever fired (stale re-arm guard).
    last_fired: u64,
    /// Recovery ids fired since the last harvest.
    pub fired: Vec<u64>,
    /// `(fault_log index, requeued count)` patches from executed kills.
    pub requeue_patches: Vec<(usize, u64)>,
    /// Per physical-GPU bin: worker slots throttled by an active degrade.
    degraded_victims: Vec<Option<Vec<usize>>>,
}

impl<'a> Lane<'a> {
    /// `capacity` pre-sizes the lane's event queue (see
    /// `Cluster::lane_capacity_hints`); `mailbox_capacity` pre-sizes the
    /// command mailbox (zero in per-event mode, where commands never queue).
    pub fn new(
        shard: usize,
        engine: ShardEngine<'a>,
        num_gpus: usize,
        capacity: usize,
        mailbox_capacity: usize,
    ) -> Self {
        Lane {
            shard,
            engine,
            sim: Simulation::with_capacity(capacity),
            mailbox: VecDeque::with_capacity(mailbox_capacity),
            armed: None,
            last_fired: 0,
            fired: Vec::new(),
            requeue_patches: Vec::new(),
            degraded_victims: vec![None; num_gpus],
        }
    }

    /// Advances this lane up to (strictly before) `bound`: local events and
    /// mailboxed commands merge by packed `(time, key)` stamp, commands
    /// first at equal stamps — the same order a single shared event queue
    /// would have produced with the gateway's items keyed at their stamps.
    /// Every comparison in the loop is a single `u128` compare: the bound
    /// is packed once, the mailbox stores pre-packed stamps, and the lane
    /// queue exposes its front as a packed stamp.
    pub fn advance(&mut self, bound: (SimTime, u64)) {
        let bound = pack_stamp(bound.0, bound.1);
        loop {
            let next_cmd = self.mailbox.front().map(|&(s, _)| s);
            let take_cmd = match (next_cmd, self.sim.peek_stamp()) {
                (Some(c), Some(e)) => c <= e,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_cmd {
                let stamp = next_cmd.expect("checked above");
                if stamp >= bound {
                    break;
                }
                let (_, cmd) = self.mailbox.pop_front().expect("checked above");
                self.apply(unpack_time(stamp), cmd);
            } else {
                let Some((now, event)) = self.sim.next_event_if_before_stamp(bound) else {
                    break;
                };
                self.handle_event(now, event);
            }
        }
    }

    fn handle_event(&mut self, now: SimTime, event: ShardEvent) {
        let (engine, sim) = (&mut self.engine, &mut self.sim);
        engine.handle(now, event, &mut |t, k, e| sim.schedule_at_keyed(t, k, e));
        self.try_fire(now);
    }

    /// Executes one gateway command at its stamp. Shared by both sync
    /// modes: per-event windows call it synchronously, lookahead windows
    /// through the mailbox — identical lane state either way.
    pub fn apply(&mut self, t: SimTime, cmd: Command) {
        self.sim.advance_to(t);
        let (engine, sim) = (&mut self.engine, &mut self.sim);
        let mut sched = |ti: SimTime, k: u64, e: ShardEvent| sim.schedule_at_keyed(ti, k, e);
        match cmd {
            Command::Offer(tq) => engine.offer(tq, &mut sched),
            Command::Replan(r) => {
                if engine.reconfig_in_flight() {
                    engine.abort_reconfig(t, &mut sched);
                }
                engine.force_replan(&r.as_request(), t, &mut sched);
            }
            Command::Kill { gpu, log_idx } => {
                if engine.reconfig_in_flight() {
                    engine.abort_reconfig(t, &mut sched);
                }
                let bins = gpu_bins(engine);
                let requeued = match bins.get(gpu) {
                    Some(victims) => engine.kill_instances(victims, t, &mut sched),
                    None => 0,
                };
                self.requeue_patches.push((log_idx, requeued));
            }
            Command::Degrade { gpu, factor_milli } => {
                let victims = gpu_bins(engine).get(gpu).cloned().unwrap_or_default();
                if !victims.is_empty() {
                    // Sub-unit factors would mean a *faster* GPU; clamp so a
                    // malformed plan degrades to a recorded no-op.
                    let factor = f64::from(factor_milli.max(1000)) / 1000.0;
                    engine.set_degrade(&victims, factor);
                }
                if let Some(slot) = self.degraded_victims.get_mut(gpu) {
                    *slot = Some(victims);
                }
            }
            Command::Restore { gpu } => {
                if let Some(victims) = self.degraded_victims.get_mut(gpu).and_then(Option::take) {
                    if !victims.is_empty() {
                        engine.set_degrade(&victims, 1.0);
                    }
                }
            }
            Command::Arm(r) => {
                if r.id > self.last_fired {
                    self.armed = Some(r);
                    self.try_fire(t);
                }
            }
            Command::Disarm => self.armed = None,
        }
    }

    /// Fires the armed recovery re-plan if no reconfiguration is in flight
    /// — called after every local event and on arming, mirroring the
    /// sequential engine's poke-after-every-shard-event retry.
    fn try_fire(&mut self, now: SimTime) {
        if self.armed.is_some() && !self.engine.reconfig_in_flight() {
            let r = self.armed.take().expect("checked above");
            let (engine, sim) = (&mut self.engine, &mut self.sim);
            engine.force_replan(&r.as_request(), now, &mut |t, k, e| {
                sim.schedule_at_keyed(t, k, e);
            });
            self.last_fired = r.id;
            self.fired.push(r.id);
        }
    }
}

/// Who advances the lanes between gateway decisions. Implementations must
/// leave `lanes` in shard-index order.
pub(crate) trait LaneExecutor<'a> {
    fn advance_all(&mut self, lanes: &mut Vec<Lane<'a>>, bound: (SimTime, u64));
}

/// Single-threaded executor: advances lanes in place, in shard order.
pub(crate) struct SerialExecutor;

impl<'a> LaneExecutor<'a> for SerialExecutor {
    fn advance_all(&mut self, lanes: &mut Vec<Lane<'a>>, bound: (SimTime, u64)) {
        for lane in lanes.iter_mut() {
            lane.advance(bound);
        }
    }
}

/// The parallel structure of one windowed run, measured in lane events:
/// how much lane work each synchronization window held, and how that work
/// would bucket onto a lane worker pool of each profiled size.
///
/// Wall-clock scaling on a given host confounds the engine's structure
/// with the host's core count; this profile is the structure alone —
/// deterministic, bit-for-bit reproducible, and measured from the same
/// run that produced the report. `bench_megacluster` uses it to emit the
/// events/sec-vs-cores curve with the measurement basis spelled out.
#[derive(Debug, Clone)]
pub struct WindowProfile {
    /// Synchronization windows executed (lane-advancement barriers).
    pub windows: u64,
    /// Total lane events processed across all shards — the single-thread
    /// critical path.
    pub lane_events: u64,
    /// Per profiled thread count `k`: the sum over windows of the largest
    /// per-bucket lane-event count under the pool's `shard % workers`
    /// assignment — the lane work on the critical path when `k` workers
    /// advance the lanes. Always ≥ `lane_events / k` (imbalance) and ≤
    /// `lane_events` (never slower than serial).
    pub critical_path: Vec<(usize, u64)>,
}

impl WindowProfile {
    /// The modeled end-to-end speedup of running this exact window
    /// structure on `threads` workers, with `serial_events` events (the
    /// gateway's own items) that stay on the coordinator regardless:
    /// `(lane + serial) / (critical_path(threads) + serial)`.
    #[must_use]
    pub fn modeled_speedup(&self, threads: usize, serial_events: u64) -> f64 {
        let crit = self
            .critical_path
            .iter()
            .find(|&&(k, _)| k == threads)
            .map_or(self.lane_events, |&(_, c)| c);
        (self.lane_events + serial_events) as f64 / (crit + serial_events).max(1) as f64
    }
}

/// A [`SerialExecutor`] that additionally measures the run's
/// [`WindowProfile`]: per window, each lane's processed-event delta is
/// bucketed by the worker assignment each profiled thread count would use,
/// and the largest bucket joins that count's critical path.
pub(crate) struct ProfilingExecutor {
    thread_counts: Vec<usize>,
    snap: Vec<u64>,
    /// Per-window scratch, reused across the run's thousands of windows so
    /// profiling allocates nothing after the first window.
    deltas: Vec<u64>,
    buckets: Vec<u64>,
    profile: WindowProfile,
}

impl ProfilingExecutor {
    pub fn new(thread_counts: &[usize]) -> Self {
        ProfilingExecutor {
            thread_counts: thread_counts.to_vec(),
            snap: Vec::new(),
            deltas: Vec::new(),
            buckets: Vec::new(),
            profile: WindowProfile {
                windows: 0,
                lane_events: 0,
                critical_path: thread_counts.iter().map(|&k| (k, 0)).collect(),
            },
        }
    }

    pub fn into_profile(self) -> WindowProfile {
        self.profile
    }
}

impl<'a> LaneExecutor<'a> for ProfilingExecutor {
    fn advance_all(&mut self, lanes: &mut Vec<Lane<'a>>, bound: (SimTime, u64)) {
        self.snap.resize(lanes.len(), 0);
        for lane in lanes.iter_mut() {
            lane.advance(bound);
        }
        let (snap, deltas) = (&mut self.snap, &mut self.deltas);
        deltas.clear();
        deltas.extend(lanes.iter().map(|l| {
            let d = l.sim.events_processed() - snap[l.shard];
            snap[l.shard] = l.sim.events_processed();
            d
        }));
        let window_total: u64 = deltas.iter().sum();
        self.profile.windows += 1;
        self.profile.lane_events += window_total;
        for (idx, &k) in self.thread_counts.iter().enumerate() {
            let workers = k.clamp(1, lanes.len());
            self.buckets.clear();
            self.buckets.resize(workers, 0);
            for (lane, &d) in lanes.iter().zip(deltas.iter()) {
                self.buckets[lane.shard % workers] += d;
            }
            self.profile.critical_path[idx].1 += self.buckets.iter().copied().max().unwrap_or(0);
        }
    }
}

struct AdvanceJob<'a> {
    lanes: Vec<Lane<'a>>,
    bound: (SimTime, u64),
}

/// A bounded pool of persistent workers (the cluster-engine sibling of the
/// pool behind `parallel_map_indexed`): shard `s` always advances on worker
/// `s % threads`, lanes travel to their worker and back each window, and
/// because each lane's advancement is self-contained the assignment is pure
/// bookkeeping — any thread count computes identical lanes.
pub(crate) struct WorkerPool<'a> {
    jobs: Vec<mpsc::Sender<AdvanceJob<'a>>>,
    done: Vec<mpsc::Receiver<Vec<Lane<'a>>>>,
    /// Per-worker lane buckets: each window the filled buckets move into
    /// the jobs and the emptied vectors come home through `done`, so the
    /// steady state ships lanes both ways with zero allocation.
    buckets: Vec<Vec<Lane<'a>>>,
    sent: Vec<bool>,
    /// Shard-indexed return slots, reused across windows.
    slots: Vec<Option<Lane<'a>>>,
}

impl<'a> WorkerPool<'a> {
    /// Spawns `threads` workers inside `scope`.
    pub fn new<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        threads: usize,
    ) -> Self
    where
        'a: 'scope + 'env,
    {
        let mut jobs = Vec::with_capacity(threads);
        let mut done = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (job_tx, job_rx) = mpsc::channel::<AdvanceJob<'a>>();
            let (done_tx, done_rx) = mpsc::channel::<Vec<Lane<'a>>>();
            scope.spawn(move || {
                while let Ok(AdvanceJob { mut lanes, bound }) = job_rx.recv() {
                    for lane in &mut lanes {
                        lane.advance(bound);
                    }
                    if done_tx.send(lanes).is_err() {
                        break;
                    }
                }
            });
            jobs.push(job_tx);
            done.push(done_rx);
        }
        WorkerPool {
            jobs,
            done,
            buckets: Vec::new(),
            sent: Vec::new(),
            slots: Vec::new(),
        }
    }
}

impl<'a> LaneExecutor<'a> for WorkerPool<'a> {
    fn advance_all(&mut self, lanes: &mut Vec<Lane<'a>>, bound: (SimTime, u64)) {
        let n = lanes.len();
        let workers = self.jobs.len();
        self.buckets.resize_with(workers, Vec::new);
        for lane in lanes.drain(..) {
            self.buckets[lane.shard % workers].push(lane);
        }
        self.sent.clear();
        self.sent.resize(workers, false);
        for w in 0..workers {
            if self.buckets[w].is_empty() {
                continue;
            }
            self.sent[w] = true;
            let bucket = std::mem::take(&mut self.buckets[w]);
            self.jobs[w]
                .send(AdvanceJob {
                    lanes: bucket,
                    bound,
                })
                .expect("worker alive for the whole run");
        }
        self.slots.clear();
        self.slots.resize_with(n, || None);
        for w in 0..workers {
            if !self.sent[w] {
                continue;
            }
            let mut advanced = self.done[w].recv().expect("worker alive for the whole run");
            for lane in advanced.drain(..) {
                let home = lane.shard;
                self.slots[home] = Some(lane);
            }
            // The drained vector keeps its capacity for next window's bucket.
            self.buckets[w] = advanced;
        }
        lanes.extend(
            self.slots
                .drain(..)
                .map(|s| s.expect("every lane comes home")),
        );
    }
}
