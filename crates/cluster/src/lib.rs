//! # inference-cluster — multi-server sharding with capacity loaning
//!
//! The layer above the server: a [`Cluster`] hosts N *shards* — each a full
//! `inference_server::MultiModelServer` over its own GPC budget — behind a
//! [`ClusterRouter`](RouterPolicy) inside **one** deterministic
//! discrete-event simulation. It scales the paper's elastic loop (PARIS
//! planning + ELSA dispatch + MIG reslicing) past a single server, the way
//! Aryl (arXiv:2202.07896) scales GPU clusters:
//!
//! * [`RouterPolicy`] routes each tagged arrival to a shard — static hash
//!   partitioning, join-shortest-queue on per-shard outstanding load, or
//!   weighted round-robin by planned capacity;
//! * [`LoanPolicy`] implements Aryl-style capacity loaning: a low-priority
//!   batch pool lends whole GPUs to serving shards when the cluster-level
//!   drift detector flags sustained overload, and reclaims them when load
//!   subsides. Both directions re-plan the shard onto its new budget
//!   through the ordinary `plan_diff` → quiesce/drain → reslice-downtime
//!   machinery, so no query is ever dropped mid-transfer;
//! * [`ShedPolicy`] adds brownout admission control: per-model priority
//!   classes, with low classes rejected at the gateway when lost capacity
//!   or surge makes their SLA hopeless — so a correlated outage degrades
//!   *gracefully* instead of dragging premium traffic down with it;
//! * [`ClusterReport`] aggregates per-shard reports, fleet-wide latency,
//!   per-model shed counts, the loan ledger and its opportunity cost.
//!
//! Two contracts pin the layer down (see [`Cluster`]): a **1-shard cluster
//! degenerates bit-for-bit** to its shard's own run, and **conservation**
//! holds across routing, loans, reclaims and shedding — every offered
//! query is exactly served-or-shed (ARCHITECTURE.md invariant 10).

mod cluster;
mod faults;
mod loan;
mod parallel;
mod router;
mod shed;

pub use cluster::{cluster_threads_from_env, Cluster, ClusterReport, FaultRecord, PinnedQuery};
pub use faults::{FaultEvent, FaultTimeline};
pub use loan::{degrade_inflated_demand, LoanDemandModel, LoanEvent, LoanPolicy};
pub use parallel::{SyncWindow, WindowProfile};
pub use router::RouterPolicy;
pub use shed::{degraded_capacity_gpus, ShedPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_zoo::ModelKind;
    use inference_server::{
        ModelSpec, MultiModelConfig, MultiModelServer, MultiRunReport, ReportDetail,
    };
    use inference_workload::{
        BatchDistribution, DriftDetectorConfig, MultiTraceGenerator, PhaseSpec, TaggedQuerySpec,
    };
    use mig_gpu::{DeviceSpec, PerfModel, ProfileSize};
    use paris_core::{GpcBudget, ProfileTable};

    fn table() -> ProfileTable {
        let model = ModelKind::MobileNet.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
    }

    fn shard(gpus: usize, table: &ProfileTable, dist: &BatchDistribution) -> MultiModelServer {
        MultiModelServer::new(
            vec![ModelSpec::new("mobilenet", table.clone(), dist.clone())],
            GpcBudget::new(gpus * 7, gpus),
            MultiModelConfig::new(),
        )
        .expect("plan builds")
    }

    /// The offered rate that loads roughly `demand_gpus` full-GPU
    /// equivalents of this shard at planned efficiency — the demand proxy
    /// the loan controller estimates — so tests express load in capacity
    /// units instead of magic rates.
    fn rate_for_demand(server: &MultiModelServer, demand_gpus: f64) -> f64 {
        demand_gpus * server.capacity_hint_qps() / server.budget().num_gpus as f64
    }

    fn assert_shard_reports_identical(a: &MultiRunReport, b: &MultiRunReport) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.record_models, b.record_models);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.partition_utilization, b.partition_utilization);
        assert_eq!(a.partition_sizes, b.partition_sizes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.achieved_qps, b.achieved_qps);
        assert_eq!(a.reconfigs, b.reconfigs);
        for (ma, mb) in a.per_model.iter().zip(&b.per_model) {
            assert_eq!(ma.completed, mb.completed);
            assert_eq!(ma.sla_violations, mb.sla_violations);
        }
    }

    fn assert_conserved(report: &crate::ClusterReport, trace: &[TaggedQuerySpec]) {
        let completed: usize = report.per_shard.iter().map(|r| r.records.len()).sum();
        assert_eq!(completed, trace.len(), "nothing dropped, nothing invented");
        for (s, shard_report) in report.per_shard.iter().enumerate() {
            // Query ids are shard-local and must be unique within a shard.
            let mut ids: Vec<u64> = shard_report.records.iter().map(|r| r.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                shard_report.records.len(),
                "shard {s} double-served a query"
            );
            assert_eq!(shard_report.records.len() as u64, report.routed[s]);
        }
    }

    #[test]
    fn one_shard_cluster_degenerates_to_the_server() {
        let t = table();
        let dist = BatchDistribution::paper_default();
        let server = shard(3, &t, &dist);
        let rate = rate_for_demand(&server, 1.5);
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(1.0, vec![(rate, dist)])], 11).generate();
        let expected = server.run_stream(trace.iter().copied(), ReportDetail::Full);
        for router in [
            RouterPolicy::StaticHash,
            RouterPolicy::JoinShortestQueue,
            RouterPolicy::WeightedByCapacity,
        ] {
            let cluster = Cluster::new(vec![server.clone()], router);
            let got = cluster.run_stream(trace.iter().copied(), ReportDetail::Full);
            assert_shard_reports_identical(&got.per_shard[0], &expected);
            assert_eq!(got.completed(), expected.completed());
            assert_eq!(got.makespan, expected.makespan);
            assert!(got.loans.is_empty());
        }
    }

    #[test]
    fn jsq_beats_static_hash_on_heterogeneous_shards() {
        let t = table();
        let dist = BatchDistribution::paper_default();
        // A 3-GPU shard next to a 1-GPU shard: uniform hashing sends half
        // the traffic to a quarter of the capacity. Offer 90 % of the
        // fleet's *planned* capacity, so balanced routing copes while the
        // hashed small shard drowns at ~1.8× its own capacity.
        let shards = || vec![shard(3, &t, &dist), shard(1, &t, &dist)];
        let rate = 0.9
            * shards()
                .iter()
                .map(MultiModelServer::capacity_hint_qps)
                .sum::<f64>();
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(2.0, vec![(rate, dist.clone())])], 5)
                .generate();
        let hashed = Cluster::new(shards(), RouterPolicy::StaticHash).run(&trace);
        let jsq = Cluster::new(shards(), RouterPolicy::JoinShortestQueue).run(&trace);
        let weighted = Cluster::new(shards(), RouterPolicy::WeightedByCapacity).run(&trace);
        assert_conserved(&hashed, &trace);
        assert_conserved(&jsq, &trace);
        assert_conserved(&weighted, &trace);
        // Load-aware (and capacity-aware) routing must beat uniform
        // hashing on the worst shard's tail.
        assert!(
            jsq.worst_p95_sla_ratio() < hashed.worst_p95_sla_ratio(),
            "jsq {} vs hash {}",
            jsq.worst_p95_sla_ratio(),
            hashed.worst_p95_sla_ratio()
        );
        assert!(weighted.worst_p95_sla_ratio() < hashed.worst_p95_sla_ratio());
        // JSQ sends more traffic to the bigger shard.
        assert!(jsq.routed[0] > 2 * jsq.routed[1]);
    }

    /// A calm → surge → calm schedule around a single 2-GPU shard with a
    /// 2-GPU batch pool.
    fn surge_cluster_and_trace(pool: usize) -> (Cluster, Cluster, Vec<TaggedQuerySpec>) {
        let t = table();
        let dist = BatchDistribution::paper_default();
        let serving = shard(2, &t, &dist);
        let calm = rate_for_demand(&serving, 1.0);
        let surge = rate_for_demand(&serving, 3.2);
        let trace = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.5, vec![(calm, dist.clone())]),
                PhaseSpec::new(2.5, vec![(surge, dist.clone())]),
                PhaseSpec::new(2.0, vec![(calm, dist.clone())]),
            ],
            23,
        )
        .generate();
        let policy = LoanPolicy::new(pool, 0.25)
            .with_detector(DriftDetectorConfig::new(0.25).with_min_observations(20));
        let base = Cluster::new(vec![serving], RouterPolicy::JoinShortestQueue);
        let loaning = base.clone().with_loan(policy);
        (base, loaning, trace)
    }

    #[test]
    fn loans_engage_on_surge_and_reclaim_after() {
        let (_, loaning, trace) = surge_cluster_and_trace(2);
        let report = loaning.run(&trace);
        assert_conserved(&report, &trace);
        let borrowed: i64 = report
            .loans
            .iter()
            .filter(|l| l.gpus_delta > 0)
            .map(|l| l.gpus_delta)
            .sum();
        let returned: i64 = report
            .loans
            .iter()
            .filter(|l| l.gpus_delta < 0)
            .map(|l| -l.gpus_delta)
            .sum();
        assert!(borrowed > 0, "the surge must trigger a loan");
        assert!(returned > 0, "the calm tail must reclaim");
        assert!(returned <= borrowed, "cannot return more than was lent");
        assert!(report.loaned_gpu_seconds > 0.0);
        // The ledger never over-lends the pool.
        for l in &report.loans {
            assert!(l.pool_free_after <= 2);
        }
        // Loan-triggered re-plans really happened and charged downtime.
        assert!(report.total_reconfigs() >= 2);
    }

    #[test]
    fn loaning_outserves_the_fixed_shard_under_surge() {
        let (base, loaning, trace) = surge_cluster_and_trace(2);
        let fixed = base.run(&trace);
        let loaned = loaning.run(&trace);
        assert_conserved(&fixed, &trace);
        assert_conserved(&loaned, &trace);
        assert!(
            loaned.worst_violation_rate() < fixed.worst_violation_rate(),
            "borrowed GPUs must cut surge violations: loaned {} vs fixed {}",
            loaned.worst_violation_rate(),
            fixed.worst_violation_rate()
        );
    }

    #[test]
    fn rolling_loans_conserve_queries_and_still_engage() {
        // The loan path consumes the same ReconfigSchedule machinery as
        // drift re-plans: with rolling staging, borrowed GPUs still engage
        // on the surge, reclaims still return them, and conservation holds
        // across every partial step.
        use paris_core::ReconfigMode;
        let (_, loaning, trace) = surge_cluster_and_trace(2);
        let policy = loaning
            .loan()
            .expect("loaning cluster")
            .clone()
            .with_mode(ReconfigMode::Rolling);
        let rolling = Cluster::new(loaning.shards().to_vec(), loaning.router()).with_loan(policy);
        let report = rolling.run_stream(trace.iter().copied(), ReportDetail::Full);
        assert_conserved(&report, &trace);
        assert!(
            report.loans.iter().any(|l| l.gpus_delta > 0),
            "the surge must still trigger a loan under rolling staging"
        );
        for r in report.per_shard.iter().flat_map(|r| &r.records) {
            assert!(r.arrival <= r.dispatched);
            assert!(r.dispatched <= r.started);
            assert!(r.started < r.completed);
        }
        for rc in report.per_shard.iter().flat_map(|r| &r.reconfigs) {
            assert!(rc.steps >= 1);
        }
    }

    #[test]
    fn reclaim_mid_drain_strands_no_query() {
        // The reclaim path shrinks a shard's budget while its queues are
        // still busy: the removed instances must drain (serving every
        // queued query) before their GPUs go home. Conservation at full
        // detail proves no query was stranded on a removed GPU.
        let (_, loaning, trace) = surge_cluster_and_trace(2);
        let report = loaning.run_stream(trace.iter().copied(), ReportDetail::Full);
        assert_conserved(&report, &trace);
        assert!(
            report.loans.iter().any(|l| l.gpus_delta < 0),
            "scenario must exercise a reclaim"
        );
        // A reclaim destroys instances; the drained instances' queries all
        // completed (ids are dense per shard thanks to conservation), and
        // lifecycle timestamps stay ordered even across the transition.
        assert!(report
            .per_shard
            .iter()
            .flat_map(|r| &r.reconfigs)
            .any(|rc| rc.destroyed > 0));
        for r in report.per_shard.iter().flat_map(|r| &r.records) {
            assert!(r.arrival <= r.dispatched);
            assert!(r.dispatched <= r.started);
            assert!(r.started < r.completed);
        }
    }

    #[test]
    fn shared_event_queue_stays_small() {
        // O(partitions + frontend backlog): at this moderate load the
        // gateway backlog is a handful of bursty arrivals, never O(trace).
        let (_, loaning, trace) = surge_cluster_and_trace(2);
        let report = loaning.run_stream(trace.iter().copied(), ReportDetail::Summary);
        let total_partitions: usize = report
            .per_shard
            .iter()
            .map(|r| r.partition_sizes.len())
            .sum();
        assert!(
            report.peak_pending_events <= total_partitions + report.per_shard.len() + 32,
            "streamed cluster queue stays O(partitions + backlog), got {}",
            report.peak_pending_events
        );
        assert!(report.peak_pending_events < trace.len() / 10);
    }

    #[test]
    fn empty_fault_timeline_degenerates_to_run_stream_bit_for_bit() {
        // The fault subsystem's ground rule: with no fault events and no
        // pins, run_scenario must be byte-identical to run_stream — the
        // machinery costs nothing until an event fires. This is what keeps
        // BENCH_cluster.json reproducible under an empty FaultPlan.
        let t = table();
        let dist = BatchDistribution::paper_default();
        let cluster = Cluster::new(
            vec![shard(2, &t, &dist), shard(1, &t, &dist)],
            RouterPolicy::JoinShortestQueue,
        )
        .with_loan(
            LoanPolicy::new(1, 0.25)
                .with_detector(DriftDetectorConfig::new(0.25).with_min_observations(20)),
        );
        let rate = 0.8
            * cluster
                .shards()
                .iter()
                .map(MultiModelServer::capacity_hint_qps)
                .sum::<f64>();
        let trace = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(0.6, vec![(0.5 * rate, dist.clone())]),
                PhaseSpec::new(0.8, vec![(rate, dist)]),
            ],
            31,
        )
        .generate();
        let plain = cluster.run_stream(trace.iter().copied(), ReportDetail::Full);
        let faulted = cluster.run_scenario(
            trace.iter().copied().map(|tq| (None, tq)),
            ReportDetail::Full,
            &FaultTimeline::empty(),
        );
        assert!(faulted.faults.is_empty());
        assert_eq!(faulted.routed, plain.routed);
        assert_eq!(faulted.loans, plain.loans);
        assert_eq!(faulted.makespan, plain.makespan);
        assert_eq!(faulted.peak_pending_events, plain.peak_pending_events);
        for (a, b) in faulted.per_shard.iter().zip(&plain.per_shard) {
            assert_shard_reports_identical(a, b);
        }
    }

    #[test]
    fn gpu_fail_requeues_work_and_recovery_replans() {
        use des_engine::SimTime;
        let t = table();
        let dist = BatchDistribution::paper_default();
        let serving = shard(2, &t, &dist);
        let rate = rate_for_demand(&serving, 1.6);
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(3.0, vec![(rate, dist)])], 41).generate();
        let cluster = Cluster::new(vec![serving], RouterPolicy::JoinShortestQueue);
        let timeline = FaultTimeline::new(vec![
            (
                SimTime::from_nanos(500_000_000),
                FaultEvent::GpuFail { shard: 0, gpu: 0 },
            ),
            (
                SimTime::from_nanos(1_500_000_000),
                FaultEvent::GpuRepair { shard: 0, gpu: 0 },
            ),
        ]);
        let report = cluster.run_scenario(
            trace.iter().copied().map(|tq| (None, tq)),
            ReportDetail::Full,
            &timeline,
        );
        assert_conserved(&report, &trace);
        assert_eq!(report.faults.len(), 2);
        assert!(
            report.faults[0].requeued > 0,
            "a loaded GPU must have had work to requeue: {:?}",
            report.faults
        );
        // Fail and repair each re-plan the shard (fail shrinks to the
        // survivor GPU, repair grows back).
        assert!(
            report.total_reconfigs() >= 2,
            "expected recovery re-plans, got {:?}",
            report.per_shard[0].reconfigs
        );
        // Lifecycle stays ordered across the kill/requeue path.
        for r in report.per_shard.iter().flat_map(|r| &r.records) {
            assert!(r.arrival <= r.dispatched);
            assert!(r.dispatched <= r.started);
            assert!(r.started < r.completed);
        }
    }

    #[test]
    fn shard_fail_drains_excludes_and_rejoins() {
        use des_engine::SimTime;
        let t = table();
        let dist = BatchDistribution::paper_default();
        let shards = vec![shard(2, &t, &dist), shard(2, &t, &dist)];
        let rate = 0.6
            * shards
                .iter()
                .map(MultiModelServer::capacity_hint_qps)
                .sum::<f64>();
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(3.0, vec![(rate, dist)])], 43).generate();
        let cluster = Cluster::new(shards, RouterPolicy::JoinShortestQueue);
        let fail_ns = 800_000_000u64;
        let repair_ns = 2_000_000_000u64;
        let timeline = FaultTimeline::new(vec![
            (
                SimTime::from_nanos(fail_ns),
                FaultEvent::ShardFail { shard: 1 },
            ),
            (
                SimTime::from_nanos(repair_ns),
                FaultEvent::ShardRepair { shard: 1 },
            ),
        ]);
        let report = cluster.run_scenario(
            trace.iter().copied().map(|tq| (None, tq)),
            ReportDetail::Full,
            &timeline,
        );
        assert_conserved(&report, &trace);
        // The drain contract: no query that arrived during the outage
        // landed on the failed shard...
        for r in &report.per_shard[1].records {
            let a = r.arrival.as_nanos();
            assert!(
                a < fail_ns || a >= repair_ns,
                "query arriving at {a} routed to the dead shard"
            );
        }
        // ...but everything it held at fail time was served, and traffic
        // returned after the repair.
        assert!(report.per_shard[1]
            .records
            .iter()
            .any(|r| r.arrival.as_nanos() >= repair_ns));
        assert!(report.routed[1] > 0);
    }

    #[test]
    fn pinned_queries_follow_their_shard_and_fail_over() {
        use des_engine::SimTime;
        let t = table();
        let dist = BatchDistribution::paper_default();
        let shards = vec![shard(2, &t, &dist), shard(2, &t, &dist)];
        let rate = 0.4 * shards[1].capacity_hint_qps();
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(2.0, vec![(rate, dist)])], 47).generate();
        // Every query pinned to shard 1; shard 1 dies mid-run and never
        // recovers within the trace.
        let fail_ns = 1_000_000_000u64;
        let timeline = FaultTimeline::new(vec![(
            SimTime::from_nanos(fail_ns),
            FaultEvent::ShardFail { shard: 1 },
        )]);
        let cluster = Cluster::new(shards, RouterPolicy::JoinShortestQueue);
        let report = cluster.run_scenario(
            trace.iter().copied().map(|tq| (Some(1), tq)),
            ReportDetail::Full,
            &timeline,
        );
        assert_conserved(&report, &trace);
        // Pins honored while alive, router fallback after the fail.
        for r in &report.per_shard[0].records {
            assert!(
                r.arrival.as_nanos() >= fail_ns,
                "shard 0 only sees failed-over traffic"
            );
        }
        assert!(
            report.routed[0] > 0,
            "failover must have rerouted the pinned stream"
        );
        assert!(report.per_shard[1]
            .records
            .iter()
            .all(|r| r.arrival.as_nanos() < fail_ns));
    }

    #[test]
    fn measured_busy_demand_model_still_engages_loans() {
        // The measured model reads what the hardware did, so it saturates
        // at current capacity under overload: the surge must be coverable
        // by the pool (demand ≤ base + pool) or the drained backlog keeps
        // the calm windows busy and the reclaim honestly never triggers.
        use crate::loan::LoanDemandModel;
        let t = table();
        let dist = BatchDistribution::paper_default();
        let serving = shard(2, &t, &dist);
        let calm = rate_for_demand(&serving, 1.0);
        let surge = rate_for_demand(&serving, 2.4);
        let trace = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.5, vec![(calm, dist.clone())]),
                PhaseSpec::new(2.5, vec![(surge, dist.clone())]),
                PhaseSpec::new(2.0, vec![(calm, dist.clone())]),
            ],
            23,
        )
        .generate();
        let policy = LoanPolicy::new(2, 0.25)
            .with_detector(DriftDetectorConfig::new(0.25).with_min_observations(20))
            .with_demand_model(LoanDemandModel::MeasuredBusy);
        let measured =
            Cluster::new(vec![serving], RouterPolicy::JoinShortestQueue).with_loan(policy);
        let report = measured.run(&trace);
        assert_conserved(&report, &trace);
        assert!(
            report.loans.iter().any(|l| l.gpus_delta > 0),
            "measured busy fractions must still trigger the surge borrow: {:?}",
            report.loans
        );
        assert!(
            report.loans.iter().any(|l| l.gpus_delta < 0),
            "and the calm tail must still reclaim: {:?}",
            report.loans
        );
    }

    #[test]
    fn shed_policy_conserves_and_never_sheds_premium() {
        // Two models on one overloaded 2-GPU shard: "premium" (class 0)
        // and "batch" (class 1). Under a 3× surge the shed policy must
        // reject batch traffic at admission while premium is never shed,
        // and every offered query is exactly served-or-shed (invariant
        // 10).
        let t = table();
        let dist = BatchDistribution::paper_default();
        let serving = MultiModelServer::new(
            vec![
                ModelSpec::new("premium", t.clone(), dist.clone()),
                ModelSpec::new("batch", t.clone(), dist.clone()),
            ],
            GpcBudget::new(14, 2),
            MultiModelConfig::new(),
        )
        .expect("plan builds");
        let rate = 1.5 * serving.capacity_hint_qps();
        let trace = MultiTraceGenerator::new(
            vec![PhaseSpec::new(
                2.5,
                vec![(rate, dist.clone()), (rate, dist)],
            )],
            53,
        )
        .generate();
        let cluster = Cluster::new(vec![serving], RouterPolicy::JoinShortestQueue)
            .with_shed(ShedPolicy::new(vec![0, 1]));
        let report = cluster.run(&trace);
        let completed: usize = report.per_shard.iter().map(|r| r.records.len()).sum();
        assert_eq!(
            completed as u64 + report.total_shed(),
            trace.len() as u64,
            "every query is exactly served-or-shed"
        );
        assert_eq!(report.shed_per_model[0], 0, "premium is never shed");
        assert!(
            report.shed_per_model[1] > 0,
            "the surge must shed batch traffic: {:?}",
            report.shed_per_model
        );
        // Shed queries never became load: routed still equals records.
        for (s, shard_report) in report.per_shard.iter().enumerate() {
            assert_eq!(shard_report.records.len() as u64, report.routed[s]);
        }
    }

    #[test]
    fn gpu_fail_mid_rolling_recovery_aborts_and_conserves() {
        // A second GPU dies while the rolling recovery re-plan from the
        // first failure is still mid-step: the in-flight transition must
        // abort (reviving its quiesced survivors) rather than strand the
        // step, and conservation must hold through abort + kill + the
        // follow-up re-plan.
        use des_engine::SimTime;
        let t = table();
        let dist = BatchDistribution::paper_default();
        let serving = shard(3, &t, &dist);
        let rate = rate_for_demand(&serving, 2.0);
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(3.0, vec![(rate, dist)])], 59).generate();
        let cluster = Cluster::new(vec![serving], RouterPolicy::JoinShortestQueue);
        let timeline = FaultTimeline::new(vec![
            (
                SimTime::from_nanos(500_000_000),
                FaultEvent::GpuFail { shard: 0, gpu: 0 },
            ),
            (
                SimTime::from_nanos(501_000_000),
                FaultEvent::GpuFail { shard: 0, gpu: 1 },
            ),
            (
                SimTime::from_nanos(1_800_000_000),
                FaultEvent::GpuRepair { shard: 0, gpu: 0 },
            ),
            (
                SimTime::from_nanos(1_900_000_000),
                FaultEvent::GpuRepair { shard: 0, gpu: 1 },
            ),
        ]);
        let report = cluster.run_scenario(
            trace.iter().copied().map(|tq| (None, tq)),
            ReportDetail::Full,
            &timeline,
        );
        assert_conserved(&report, &trace);
        assert!(
            report.per_shard[0].reconfigs.iter().any(|rc| rc.aborted),
            "the second fail must abort the in-flight rolling recovery: {:?}",
            report.per_shard[0].reconfigs
        );
        // The cluster still recovered: a completed (non-aborted) re-plan
        // follows, and lifecycle stays ordered through the abort.
        assert!(report.per_shard[0].reconfigs.iter().any(|rc| !rc.aborted));
        for r in report.per_shard.iter().flat_map(|r| &r.records) {
            assert!(r.arrival <= r.dispatched);
            assert!(r.dispatched <= r.started);
            assert!(r.started < r.completed);
        }
    }

    #[test]
    fn unit_degrade_is_bit_identical_and_real_degrade_slows_the_tail() {
        use des_engine::SimTime;
        let t = table();
        let dist = BatchDistribution::paper_default();
        let serving = shard(2, &t, &dist);
        let rate = rate_for_demand(&serving, 1.5);
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(3.0, vec![(rate, dist)])], 61).generate();
        let cluster = Cluster::new(vec![serving], RouterPolicy::JoinShortestQueue);
        let arrivals = || trace.iter().copied().map(|tq| (None, tq));
        let plain = cluster.run_scenario(arrivals(), ReportDetail::Full, &FaultTimeline::empty());
        // Factor 1.0 "degrade": the whole degrade/restore cycle must be
        // bit-for-bit the fault-free run — the only trace it leaves is the
        // fault log itself.
        let unit = FaultTimeline::new(vec![
            (
                SimTime::from_nanos(400_000_000),
                FaultEvent::GpuDegrade {
                    shard: 0,
                    gpu: 0,
                    factor_milli: 1000,
                },
            ),
            (
                SimTime::from_nanos(1_200_000_000),
                FaultEvent::GpuRestore { shard: 0, gpu: 0 },
            ),
        ]);
        let unit_report = cluster.run_scenario(arrivals(), ReportDetail::Full, &unit);
        assert_eq!(unit_report.faults.len(), 2);
        assert_eq!(unit_report.routed, plain.routed);
        for (a, b) in unit_report.per_shard.iter().zip(&plain.per_shard) {
            assert_shard_reports_identical(a, b);
        }
        // A real 4× slow-GPU window conserves every query but drags the
        // tail: the throttled instances keep serving, just slower.
        let slow = FaultTimeline::new(vec![
            (
                SimTime::from_nanos(400_000_000),
                FaultEvent::GpuDegrade {
                    shard: 0,
                    gpu: 0,
                    factor_milli: 4000,
                },
            ),
            (
                SimTime::from_nanos(2_000_000_000),
                FaultEvent::GpuRestore { shard: 0, gpu: 0 },
            ),
        ]);
        let slow_report = cluster.run_scenario(arrivals(), ReportDetail::Full, &slow);
        assert_conserved(&slow_report, &trace);
        assert!(
            slow_report.histogram.percentile_ms(0.95) > plain.histogram.percentile_ms(0.95),
            "a 4x slow GPU must drag the p95 tail: slow {} vs plain {}",
            slow_report.histogram.percentile_ms(0.95),
            plain.histogram.percentile_ms(0.95)
        );
    }

    #[test]
    #[should_panic(expected = "same number of models")]
    fn mismatched_shard_model_counts_panic() {
        let t = table();
        let dist = BatchDistribution::paper_default();
        let one = shard(2, &t, &dist);
        let two = MultiModelServer::new(
            vec![
                ModelSpec::new("a", t.clone(), dist.clone()),
                ModelSpec::new("b", t.clone(), dist),
            ],
            GpcBudget::new(14, 2),
            MultiModelConfig::new(),
        )
        .expect("plan builds");
        let _ = Cluster::new(vec![one, two], RouterPolicy::StaticHash);
    }
}
