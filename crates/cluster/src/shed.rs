//! Brownout admission control: shed low-priority queries at the frontend
//! when lost capacity or surge makes their SLA hopeless.
//!
//! Aryl-style clusters reason about *priority under scarcity*: when a rack
//! goes out, admitting every query just converts the capacity hole into
//! fleet-wide SLA death. A [`ShedPolicy`] assigns each model a priority
//! class and rejects low-class queries **at admission** — before they ever
//! touch a queue — whenever the picked shard's projected queueing delay
//! exceeds the class's share of the SLA budget. Premium traffic (class 0)
//! is never shed; higher classes brown out earlier, so under a correlated
//! outage the survivors' capacity concentrates on the traffic that pays
//! for it.
//!
//! Shedding extends conservation: invariant 10 says every offered query is
//! **exactly served-or-shed** — shed counts plus completions reconstruct
//! the offered trace with nothing dropped, double-served, or double-shed.

/// Per-model priority classes plus the brownout threshold.
///
/// Class 0 is premium and is never shed. A class-`c` query (`c ≥ 1`) is
/// rejected at admission when the picked shard's estimated delay satisfies
/// `delay × c ≥ margin × SLA` — higher classes hit the brownout wall at a
/// fraction of the SLA budget, so shedding is graded, not all-or-nothing.
///
/// # Examples
///
/// ```
/// use inference_cluster::ShedPolicy;
///
/// // Model 0 premium, model 1 best-effort batch.
/// let policy = ShedPolicy::new(vec![0, 1]);
/// assert!(!policy.should_shed(0, f64::INFINITY, 1_000_000));
/// assert!(policy.should_shed(1, 2_000_000.0, 1_000_000));
/// assert!(!policy.should_shed(1, 100_000.0, 1_000_000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShedPolicy {
    classes: Vec<usize>,
    margin: f64,
}

impl ShedPolicy {
    /// Creates the policy: `classes[m]` is model `m`'s priority class
    /// (0 = premium, never shed). Margin defaults to 1.0 — class 1 sheds
    /// exactly when its projected delay alone would consume the whole SLA
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    #[must_use]
    pub fn new(classes: Vec<usize>) -> Self {
        assert!(!classes.is_empty(), "shed policy needs at least one model");
        ShedPolicy {
            classes,
            margin: 1.0,
        }
    }

    /// Overrides the brownout margin: the fraction of the SLA budget a
    /// class-1 query's projected delay may consume before it sheds.
    /// Smaller margins shed earlier.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not positive and finite.
    #[must_use]
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(
            margin.is_finite() && margin > 0.0,
            "shed margin must be positive"
        );
        self.margin = margin;
        self
    }

    /// The per-model priority classes.
    #[must_use]
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// The brownout margin.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// The admission decision: shed a `model` query when the picked
    /// shard's estimated queueing delay (`est_delay_ns`, may be infinite
    /// when no capacity survives) makes the class's slack negative.
    /// Premium (class 0) always admits.
    #[must_use]
    pub fn should_shed(&self, model: usize, est_delay_ns: f64, sla_ns: u64) -> bool {
        let class = self.classes.get(model).copied().unwrap_or(0);
        if class == 0 {
            return false;
        }
        est_delay_ns * class as f64 >= self.margin * sla_ns as f64
    }
}

/// Effective serving capacity of `live_gpus` GPUs, in full-healthy-GPU
/// equivalents, given the active slow-GPU degrade factors among them
/// (`factor_milli`, 1000 = full speed, 4000 = 4× slower).
///
/// Each degraded GPU contributes `1000 / factor` of a GPU instead of a
/// whole one, so a shard with 4 live GPUs one of which is throttled 4×
/// serves like 3.25 healthy GPUs — the capacity the shed policy's
/// projected-delay estimate and the loan controller's demand inflation
/// both reason against. Without this, a throttled shard *looks* full-size
/// to admission control (delay estimates stay rosy while queues grow) and
/// *looks* merely busy to the loan controller (its silicon is saturated,
/// but with slow cycles).
///
/// Factors below 1000 are clamped to 1000: a "degrade" cannot add
/// capacity. The result is never negative.
///
/// # Examples
///
/// ```
/// use inference_cluster::degraded_capacity_gpus;
///
/// assert_eq!(degraded_capacity_gpus(4, []), 4.0);
/// assert_eq!(degraded_capacity_gpus(4, [4000]), 3.25);
/// assert_eq!(degraded_capacity_gpus(1, [2000, 2000]), 0.0);
/// ```
#[must_use]
pub fn degraded_capacity_gpus(
    live_gpus: usize,
    factors_milli: impl IntoIterator<Item = u32>,
) -> f64 {
    let lost: f64 = factors_milli
        .into_iter()
        .map(|f| 1.0 - 1000.0 / f.max(1000) as f64)
        .sum();
    (live_gpus as f64 - lost).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_capacity_discounts_throttled_gpus() {
        // The satellite contract: a 4× throttle turns one of 4 GPUs into
        // a quarter-GPU, so the shard serves like 3.25 healthy GPUs.
        assert!((degraded_capacity_gpus(4, [4000]) - 3.25).abs() < 1e-12);
        // Unit factor is a no-op; sub-unit factors clamp (never a bonus).
        assert_eq!(degraded_capacity_gpus(4, [1000]), 4.0);
        assert_eq!(degraded_capacity_gpus(4, [500]), 4.0);
        // Healthy shard: identity.
        assert_eq!(degraded_capacity_gpus(3, []), 3.0);
        // Over-degraded never goes negative.
        assert_eq!(degraded_capacity_gpus(1, [10_000, 10_000]), 0.0);
    }

    #[test]
    fn degraded_capacity_moves_the_shed_wall() {
        // End-to-end satellite check: the same outstanding load on the
        // same SLA sheds on a 4×-throttled shard but admits on a healthy
        // one, because the capacity term shrank from 4 to 3.25 GPUs.
        let p = ShedPolicy::new(vec![0, 1]);
        let cap_hint_qps = 100.0; // planned capacity of the 4-GPU shard
        let outstanding = 9.0; // queries queued on the picked shard
        let delay = |cap_gpus: f64| outstanding / (cap_hint_qps * cap_gpus / 4.0) * 1e9;
        // Healthy: 9 queries over 100 qps projects 90 ms. Throttled: the
        // same backlog over 81.25 qps projects ~110.8 ms. An SLA between
        // the two flips the verdict purely on the capacity discount.
        let sla_ns = 100_000_000u64;
        assert!(!p.should_shed(1, delay(degraded_capacity_gpus(4, [])), sla_ns));
        assert!(p.should_shed(1, delay(degraded_capacity_gpus(4, [4000])), sla_ns));
    }

    #[test]
    fn premium_is_never_shed() {
        let p = ShedPolicy::new(vec![0, 1]);
        assert!(!p.should_shed(0, f64::INFINITY, 1));
        assert!(!p.should_shed(0, 1e18, 0));
    }

    #[test]
    fn higher_classes_shed_earlier() {
        let p = ShedPolicy::new(vec![0, 1, 2]);
        let sla = 1_000_000u64;
        // Class 1 sheds at the full budget, class 2 at half of it.
        assert!(!p.should_shed(1, 600_000.0, sla));
        assert!(p.should_shed(1, 1_000_000.0, sla));
        assert!(p.should_shed(2, 600_000.0, sla));
        assert!(!p.should_shed(2, 400_000.0, sla));
    }

    #[test]
    fn margin_scales_the_brownout_wall() {
        let p = ShedPolicy::new(vec![0, 1]).with_margin(0.5);
        let sla = 1_000_000u64;
        assert!(p.should_shed(1, 600_000.0, sla), "half budget at margin .5");
        assert!(!p.should_shed(1, 400_000.0, sla));
        assert_eq!(p.margin(), 0.5);
        assert_eq!(p.classes(), &[0, 1]);
    }

    #[test]
    fn unknown_model_defaults_to_premium() {
        // Defensive: a model index past the class list admits.
        let p = ShedPolicy::new(vec![0]);
        assert!(!p.should_shed(5, f64::INFINITY, 1));
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_class_list_panics() {
        let _ = ShedPolicy::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_margin_panics() {
        let _ = ShedPolicy::new(vec![0]).with_margin(0.0);
    }
}
