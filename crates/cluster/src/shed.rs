//! Brownout admission control: shed low-priority queries at the frontend
//! when lost capacity or surge makes their SLA hopeless.
//!
//! Aryl-style clusters reason about *priority under scarcity*: when a rack
//! goes out, admitting every query just converts the capacity hole into
//! fleet-wide SLA death. A [`ShedPolicy`] assigns each model a priority
//! class and rejects low-class queries **at admission** — before they ever
//! touch a queue — whenever the picked shard's projected queueing delay
//! exceeds the class's share of the SLA budget. Premium traffic (class 0)
//! is never shed; higher classes brown out earlier, so under a correlated
//! outage the survivors' capacity concentrates on the traffic that pays
//! for it.
//!
//! Shedding extends conservation: invariant 10 says every offered query is
//! **exactly served-or-shed** — shed counts plus completions reconstruct
//! the offered trace with nothing dropped, double-served, or double-shed.

/// Per-model priority classes plus the brownout threshold.
///
/// Class 0 is premium and is never shed. A class-`c` query (`c ≥ 1`) is
/// rejected at admission when the picked shard's estimated delay satisfies
/// `delay × c ≥ margin × SLA` — higher classes hit the brownout wall at a
/// fraction of the SLA budget, so shedding is graded, not all-or-nothing.
///
/// # Examples
///
/// ```
/// use inference_cluster::ShedPolicy;
///
/// // Model 0 premium, model 1 best-effort batch.
/// let policy = ShedPolicy::new(vec![0, 1]);
/// assert!(!policy.should_shed(0, f64::INFINITY, 1_000_000));
/// assert!(policy.should_shed(1, 2_000_000.0, 1_000_000));
/// assert!(!policy.should_shed(1, 100_000.0, 1_000_000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShedPolicy {
    classes: Vec<usize>,
    margin: f64,
}

impl ShedPolicy {
    /// Creates the policy: `classes[m]` is model `m`'s priority class
    /// (0 = premium, never shed). Margin defaults to 1.0 — class 1 sheds
    /// exactly when its projected delay alone would consume the whole SLA
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    #[must_use]
    pub fn new(classes: Vec<usize>) -> Self {
        assert!(!classes.is_empty(), "shed policy needs at least one model");
        ShedPolicy {
            classes,
            margin: 1.0,
        }
    }

    /// Overrides the brownout margin: the fraction of the SLA budget a
    /// class-1 query's projected delay may consume before it sheds.
    /// Smaller margins shed earlier.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is not positive and finite.
    #[must_use]
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!(
            margin.is_finite() && margin > 0.0,
            "shed margin must be positive"
        );
        self.margin = margin;
        self
    }

    /// The per-model priority classes.
    #[must_use]
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// The brownout margin.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// The admission decision: shed a `model` query when the picked
    /// shard's estimated queueing delay (`est_delay_ns`, may be infinite
    /// when no capacity survives) makes the class's slack negative.
    /// Premium (class 0) always admits.
    #[must_use]
    pub fn should_shed(&self, model: usize, est_delay_ns: f64, sla_ns: u64) -> bool {
        let class = self.classes.get(model).copied().unwrap_or(0);
        if class == 0 {
            return false;
        }
        est_delay_ns * class as f64 >= self.margin * sla_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn premium_is_never_shed() {
        let p = ShedPolicy::new(vec![0, 1]);
        assert!(!p.should_shed(0, f64::INFINITY, 1));
        assert!(!p.should_shed(0, 1e18, 0));
    }

    #[test]
    fn higher_classes_shed_earlier() {
        let p = ShedPolicy::new(vec![0, 1, 2]);
        let sla = 1_000_000u64;
        // Class 1 sheds at the full budget, class 2 at half of it.
        assert!(!p.should_shed(1, 600_000.0, sla));
        assert!(p.should_shed(1, 1_000_000.0, sla));
        assert!(p.should_shed(2, 600_000.0, sla));
        assert!(!p.should_shed(2, 400_000.0, sla));
    }

    #[test]
    fn margin_scales_the_brownout_wall() {
        let p = ShedPolicy::new(vec![0, 1]).with_margin(0.5);
        let sla = 1_000_000u64;
        assert!(p.should_shed(1, 600_000.0, sla), "half budget at margin .5");
        assert!(!p.should_shed(1, 400_000.0, sla));
        assert_eq!(p.margin(), 0.5);
        assert_eq!(p.classes(), &[0, 1]);
    }

    #[test]
    fn unknown_model_defaults_to_premium() {
        // Defensive: a model index past the class list admits.
        let p = ShedPolicy::new(vec![0]);
        assert!(!p.should_shed(5, f64::INFINITY, 1));
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_class_list_panics() {
        let _ = ShedPolicy::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_margin_panics() {
        let _ = ShedPolicy::new(vec![0]).with_margin(0.0);
    }
}
