//! Executable fault timelines: the hardware-failure events a cluster run
//! injects into its shared DES.
//!
//! This is the *execution* half of the fault subsystem — the sorted event
//! schedule the cluster engine consumes, plus the recovery knobs (reslice
//! cost model and staging mode) every recovery re-plan uses. The
//! *scenario* half — outage-pair builders, MTTF/MTTR sampling, availability
//! accounting — lives one layer up in the `inference-faults` crate, whose
//! `FaultPlan` compiles down to these timelines.
//!
//! Semantics, per event kind:
//!
//! * [`FaultEvent::GpuFail`] is **abrupt**: the instances packed on the
//!   failing GPU (the `gpu`-th bin of [`paris_core::pack_gpus`] over the
//!   shard's live layout) are killed on the spot — their in-flight and
//!   locally queued queries requeue through the dispatch path — and the
//!   shard re-plans onto the survivor budget.
//! * [`FaultEvent::ShardFail`] is a **drain**: the router stops sending
//!   the shard traffic and it serves out what it already holds.
//! * Repairs restore capacity/rotation and re-plan for the traffic
//!   observed in the meantime.
//!
//! The conservation contract (ARCHITECTURE.md invariant 9) holds across
//! every event: fail → drain/requeue → re-plan never strands a query.

use des_engine::SimTime;
use mig_gpu::ResliceCostModel;
use paris_core::ReconfigMode;

/// One hardware fault or repair in a cluster run.
///
/// Shard and GPU indices outside the cluster, double-fails and repairs of
/// healthy hardware are **no-ops** — the engine is idempotent, so an
/// arbitrary timeline can never corrupt a run (the conservation property
/// suite leans on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Physical GPU `gpu` of `shard` dies abruptly. `gpu` identifies one
    /// bin of the deterministic first-fit-descending packing of the
    /// shard's live instances ([`paris_core::pack_gpus`]); an index past
    /// the packing is an idle GPU — capacity shrinks but no instance dies.
    GpuFail {
        /// The shard losing the GPU.
        shard: usize,
        /// The failing GPU slot (within the shard's budget).
        gpu: usize,
    },
    /// The failed GPU returns; the shard re-plans onto the restored
    /// budget.
    GpuRepair {
        /// The shard regaining the GPU.
        shard: usize,
        /// The repaired GPU slot.
        gpu: usize,
    },
    /// The whole shard leaves the rotation: the router excludes it and it
    /// drains what it holds.
    ShardFail {
        /// The failing shard.
        shard: usize,
    },
    /// The shard rejoins the rotation and re-plans for the traffic it now
    /// sees.
    ShardRepair {
        /// The repaired shard.
        shard: usize,
    },
    /// Physical GPU `gpu` of `shard` **slows down** (thermal throttling,
    /// ECC retirement) instead of dying: the instances packed on it keep
    /// serving, `factor_milli/1000`× slower. `gpu` addresses the same
    /// [`paris_core::pack_gpus`] bin as [`GpuFail`](Self::GpuFail); a bin
    /// past the packing is an idle GPU and nothing degrades. Degrading an
    /// already-degraded GPU is a no-op; instances created *after* the
    /// degrade instant (recovery re-plans, loans) run at full speed —
    /// throttling follows the silicon that was hot, not the slot number.
    GpuDegrade {
        /// The shard owning the slow GPU.
        shard: usize,
        /// The degraded GPU slot (packing bin index).
        gpu: usize,
        /// Service-time multiplier in thousandths (1500 = 1.5×). Kept
        /// fixed-point so the event stays `Copy + Eq`; 1000 is a recorded
        /// no-op.
        factor_milli: u32,
    },
    /// The degraded GPU's clean profile returns: the instances it slowed
    /// run at full speed again.
    GpuRestore {
        /// The shard regaining full speed.
        shard: usize,
        /// The restored GPU slot.
        gpu: usize,
    },
}

/// A time-sorted, executable fault schedule plus the recovery knobs
/// every recovery re-plan shares.
///
/// # Examples
///
/// ```
/// use des_engine::SimTime;
/// use inference_cluster::{FaultEvent, FaultTimeline};
///
/// let tl = FaultTimeline::new(vec![
///     (SimTime::from_nanos(2_000_000_000), FaultEvent::GpuRepair { shard: 0, gpu: 0 }),
///     (SimTime::from_nanos(500_000_000), FaultEvent::GpuFail { shard: 0, gpu: 0 }),
/// ]);
/// assert_eq!(tl.len(), 2);
/// // Events come out time-sorted regardless of construction order.
/// assert!(tl.events()[0].0 < tl.events()[1].0);
/// assert!(FaultTimeline::empty().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FaultTimeline {
    events: Vec<(SimTime, FaultEvent)>,
    /// Prices the reslice of every fault-recovery re-plan.
    pub cost: ResliceCostModel,
    /// How recovery re-plans stage their edits.
    pub mode: ReconfigMode,
}

impl FaultTimeline {
    /// Creates a timeline from `(time, event)` pairs, sorted by time with
    /// **repairs before fails at the same instant** (so back-to-back
    /// outage windows — one ending exactly where the next begins — apply
    /// as repair-then-fail instead of a double-fail no-op that would
    /// silently erase the second window; degrades classify with fails,
    /// restores with repairs, for the same back-to-back-window reason);
    /// remaining same-instant ties keep their given order (stable sort).
    /// A100 recovery cost model and rolling staging (the workspace
    /// default) out of the box.
    #[must_use]
    pub fn new(mut events: Vec<(SimTime, FaultEvent)>) -> Self {
        events.sort_by_key(|&(at, ev)| {
            (
                at,
                matches!(
                    ev,
                    FaultEvent::GpuFail { .. }
                        | FaultEvent::ShardFail { .. }
                        | FaultEvent::GpuDegrade { .. }
                ),
            )
        });
        FaultTimeline {
            events,
            cost: ResliceCostModel::a100_default(),
            mode: ReconfigMode::Rolling,
        }
    }

    /// The empty timeline — a run with it is exactly the fault-free run.
    #[must_use]
    pub fn empty() -> Self {
        Self::new(Vec::new())
    }

    /// Overrides the recovery reslice cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: ResliceCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Overrides the staging mode of recovery re-plans.
    #[must_use]
    pub fn with_mode(mut self, mode: ReconfigMode) -> Self {
        self.mode = mode;
        self
    }

    /// Whether the timeline holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The time-sorted events.
    #[must_use]
    pub fn events(&self) -> &[(SimTime, FaultEvent)] {
        &self.events
    }
}

impl Default for FaultTimeline {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_sort_stably_by_time() {
        let t = |s| SimTime::from_nanos(s);
        let tl = FaultTimeline::new(vec![
            (t(300), FaultEvent::ShardRepair { shard: 1 }),
            (t(100), FaultEvent::ShardFail { shard: 1 }),
            (t(300), FaultEvent::GpuFail { shard: 0, gpu: 0 }),
        ]);
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.events()[0].0, t(100));
        // Same-instant order is construction order (stable sort).
        assert_eq!(tl.events()[1].1, FaultEvent::ShardRepair { shard: 1 });
        assert_eq!(tl.events()[2].1, FaultEvent::GpuFail { shard: 0, gpu: 0 });
    }

    #[test]
    fn same_instant_repair_sorts_before_fail() {
        // Back-to-back outage windows [100, 200] + [200, 300]: the t=200
        // repair must apply before the t=200 fail, or the second window
        // would collapse into a double-fail no-op followed by a heal.
        let t = |s| SimTime::from_nanos(s);
        let tl = FaultTimeline::new(vec![
            (t(100), FaultEvent::GpuFail { shard: 0, gpu: 0 }),
            (t(200), FaultEvent::GpuFail { shard: 0, gpu: 0 }),
            (t(200), FaultEvent::GpuRepair { shard: 0, gpu: 0 }),
            (t(300), FaultEvent::GpuRepair { shard: 0, gpu: 0 }),
        ]);
        assert_eq!(tl.events()[1].1, FaultEvent::GpuRepair { shard: 0, gpu: 0 });
        assert_eq!(tl.events()[2].1, FaultEvent::GpuFail { shard: 0, gpu: 0 });
    }

    #[test]
    fn default_is_empty_with_a100_recovery() {
        let tl = FaultTimeline::default();
        assert!(tl.is_empty());
        assert_eq!(tl.len(), 0);
        assert_eq!(tl.cost, ResliceCostModel::a100_default());
        assert_eq!(tl.mode, ReconfigMode::Rolling);
    }

    #[test]
    fn same_instant_restore_sorts_before_degrade() {
        // Back-to-back degrade windows behave like outage windows: the
        // t=200 restore applies before the t=200 degrade, so the second
        // window is not swallowed by the already-degraded no-op rule.
        let t = |s| SimTime::from_nanos(s);
        let deg = |m| FaultEvent::GpuDegrade {
            shard: 0,
            gpu: 0,
            factor_milli: m,
        };
        let tl = FaultTimeline::new(vec![
            (t(100), deg(2000)),
            (t(200), deg(3000)),
            (t(200), FaultEvent::GpuRestore { shard: 0, gpu: 0 }),
        ]);
        assert_eq!(
            tl.events()[1].1,
            FaultEvent::GpuRestore { shard: 0, gpu: 0 }
        );
        assert_eq!(tl.events()[2].1, deg(3000));
    }
}
