//! Online estimation of the batch-size PMF from served queries.
//!
//! §IV-B: the batch-size distribution "can readily be generated in the
//! inference server by collecting the number of input batch sizes serviced
//! within a given period of time, which PARIS can utilize as a proxy for the
//! batch size distribution PDF". This type is that collector — it also
//! powers the online-repartitioning example.

use std::fmt;

use crate::dist::{BatchDistribution, BuildDistributionError};

/// A histogram of observed batch sizes that can be snapshotted into a
/// [`BatchDistribution`] for (re)running PARIS.
///
/// # Examples
///
/// ```
/// use inference_workload::EmpiricalBatchPmf;
///
/// let mut hist = EmpiricalBatchPmf::new(32);
/// for b in [1, 2, 2, 4, 4, 4, 8] {
///     hist.observe(b);
/// }
/// assert_eq!(hist.observations(), 7);
/// let dist = hist.to_distribution()?;
/// assert!(dist.pmf(4) > dist.pmf(1));
/// # Ok::<(), inference_workload::BuildDistributionError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EmpiricalBatchPmf {
    counts: Vec<u64>,
    observations: u64,
    clamped: u64,
}

impl EmpiricalBatchPmf {
    /// Creates a collector for batch sizes `1..=max_batch`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is 0.
    #[must_use]
    pub fn new(max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        EmpiricalBatchPmf {
            counts: vec![0; max_batch],
            observations: 0,
            clamped: 0,
        }
    }

    /// Records one served query of the given batch size. Sizes above the
    /// collector's range are clamped into the top bucket (and counted, see
    /// [`clamped`](Self::clamped)); zero-sized batches are ignored.
    pub fn observe(&mut self, batch: usize) {
        if batch == 0 {
            return;
        }
        let idx = if batch > self.counts.len() {
            self.clamped += 1;
            self.counts.len() - 1
        } else {
            batch - 1
        };
        self.counts[idx] += 1;
        self.observations += 1;
    }

    /// Total queries observed.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The largest batch size the collector tracks.
    #[must_use]
    pub fn max_batch(&self) -> usize {
        self.counts.len()
    }

    /// Queries whose batch exceeded the collector's range.
    #[must_use]
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Raw count for one batch size.
    #[must_use]
    pub fn count(&self, batch: usize) -> u64 {
        if batch == 0 {
            return 0;
        }
        self.counts.get(batch - 1).copied().unwrap_or(0)
    }

    /// Resets all counts (e.g. at the start of a new observation window).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.observations = 0;
        self.clamped = 0;
    }

    /// Snapshots the histogram into a normalized [`BatchDistribution`].
    ///
    /// # Errors
    ///
    /// Returns an error if nothing has been observed yet.
    pub fn to_distribution(&self) -> Result<BatchDistribution, BuildDistributionError> {
        BatchDistribution::from_pmf(self.counts.iter().map(|&c| c as f64).collect())
    }
}

impl fmt::Display for EmpiricalBatchPmf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "empirical batch pmf ({} observations over 1..={})",
            self.observations,
            self.counts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::BatchDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_the_generating_distribution() {
        let truth = BatchDistribution::paper_default();
        let mut hist = EmpiricalBatchPmf::new(32);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..100_000 {
            hist.observe(truth.sample(&mut rng));
        }
        let est = hist.to_distribution().unwrap();
        for b in 1..=32 {
            assert!(
                (est.pmf(b) - truth.pmf(b)).abs() < 0.01,
                "batch {b}: est {:.4} vs truth {:.4}",
                est.pmf(b),
                truth.pmf(b)
            );
        }
    }

    #[test]
    fn clamps_out_of_range_batches() {
        let mut hist = EmpiricalBatchPmf::new(4);
        hist.observe(100);
        assert_eq!(hist.count(4), 1);
        assert_eq!(hist.clamped(), 1);
        assert_eq!(hist.observations(), 1);
    }

    #[test]
    fn ignores_zero_batches() {
        let mut hist = EmpiricalBatchPmf::new(4);
        hist.observe(0);
        assert_eq!(hist.observations(), 0);
    }

    #[test]
    fn empty_histogram_cannot_become_distribution() {
        let hist = EmpiricalBatchPmf::new(8);
        assert!(hist.to_distribution().is_err());
    }

    #[test]
    fn reset_clears_counts() {
        let mut hist = EmpiricalBatchPmf::new(8);
        hist.observe(3);
        hist.reset();
        assert_eq!(hist.observations(), 0);
        assert_eq!(hist.count(3), 0);
    }

    #[test]
    fn display_reports_observation_count() {
        let mut hist = EmpiricalBatchPmf::new(8);
        hist.observe(2);
        assert!(hist.to_string().contains("1 observations"));
    }
}
