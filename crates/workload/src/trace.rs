//! Deterministic query traces: the frontend input of the inference server.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::PoissonProcess;
use crate::dist::BatchDistribution;

/// One inference request as it arrives at the server frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuerySpec {
    /// Arrival time in nanoseconds since trace start.
    pub arrival_ns: u64,
    /// Input batch size carried by the query.
    pub batch: usize,
}

/// Generates reproducible query traces from a Poisson arrival process and a
/// batch-size distribution.
///
/// # Examples
///
/// ```
/// use inference_workload::{BatchDistribution, TraceGenerator};
///
/// let gen = TraceGenerator::new(
///     200.0,                                // queries/sec
///     BatchDistribution::paper_default(),   // log-normal batches 1..=32
///     42,                                   // seed
/// );
/// let trace = gen.generate_for(2.0); // two simulated seconds
/// assert!(!trace.is_empty());
/// assert!(trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    arrivals: PoissonProcess,
    batches: BatchDistribution,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator with the given arrival rate, batch distribution
    /// and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate_qps` is not positive and finite.
    #[must_use]
    pub fn new(rate_qps: f64, batches: BatchDistribution, seed: u64) -> Self {
        TraceGenerator {
            arrivals: PoissonProcess::new(rate_qps),
            batches,
            seed,
        }
    }

    /// The mean arrival rate, queries/second.
    #[must_use]
    pub fn rate_qps(&self) -> f64 {
        self.arrivals.rate_qps()
    }

    /// The batch-size distribution queries are drawn from.
    #[must_use]
    pub fn batch_distribution(&self) -> &BatchDistribution {
        &self.batches
    }

    /// Generates all queries arriving within `duration_s` simulated seconds.
    ///
    /// The same generator always produces the same trace (the RNG is
    /// re-seeded per call).
    #[must_use]
    pub fn generate_for(&self, duration_s: f64) -> Vec<QuerySpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += self.arrivals.sample_interarrival_s(&mut rng);
            if t >= duration_s {
                break;
            }
            trace.push(QuerySpec {
                arrival_ns: (t * 1e9).round() as u64,
                batch: self.batches.sample(&mut rng),
            });
        }
        trace
    }

    /// Generates exactly `count` queries.
    #[must_use]
    pub fn generate_count(&self, count: usize) -> Vec<QuerySpec> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut trace = Vec::with_capacity(count);
        let mut t = 0.0f64;
        for _ in 0..count {
            t += self.arrivals.sample_interarrival_s(&mut rng);
            trace.push(QuerySpec {
                arrival_ns: (t * 1e9).round() as u64,
                batch: self.batches.sample(&mut rng),
            });
        }
        trace
    }

    /// Streams the queries of [`generate_for`](Self::generate_for) one at a
    /// time without materializing the trace — O(1) memory however long the
    /// window. The stream yields exactly the same sequence as
    /// `generate_for(duration_s)` (the RNG is re-seeded per call).
    ///
    /// # Examples
    ///
    /// ```
    /// use inference_workload::{BatchDistribution, TraceGenerator};
    ///
    /// let gen = TraceGenerator::new(400.0, BatchDistribution::paper_default(), 7);
    /// // An hour of simulated arrivals, never materialized: the stream is
    /// // what `InferenceServer::run_stream` consumes for O(1)-memory sweeps.
    /// let mut count = 0usize;
    /// for q in gen.stream_for(3600.0) {
    ///     count += 1;
    ///     if q.arrival_ns > 1_000_000_000 {
    ///         break; // stop after the first simulated second
    ///     }
    /// }
    /// assert!(count > 100);
    /// // The stream replays the materialized trace exactly.
    /// let head: Vec<_> = gen.stream_for(0.1).collect();
    /// assert_eq!(head, gen.generate_for(0.1));
    /// ```
    #[must_use]
    pub fn stream_for(&self, duration_s: f64) -> TraceStream {
        TraceStream {
            arrivals: self.arrivals,
            batches: self.batches.clone(),
            rng: StdRng::seed_from_u64(self.seed),
            t: 0.0,
            horizon_s: duration_s,
            remaining: usize::MAX,
        }
    }

    /// Streams exactly `count` queries, mirroring
    /// [`generate_count`](Self::generate_count) without materializing the
    /// trace.
    #[must_use]
    pub fn stream_count(&self, count: usize) -> TraceStream {
        TraceStream {
            arrivals: self.arrivals,
            batches: self.batches.clone(),
            rng: StdRng::seed_from_u64(self.seed),
            t: 0.0,
            horizon_s: f64::INFINITY,
            remaining: count,
        }
    }
}

/// A lazy query stream — see [`TraceGenerator::stream_for`].
///
/// # Examples
///
/// ```
/// use inference_workload::{BatchDistribution, TraceGenerator};
///
/// let gen = TraceGenerator::new(500.0, BatchDistribution::paper_default(), 3);
/// let streamed: Vec<_> = gen.stream_for(1.0).collect();
/// assert_eq!(streamed, gen.generate_for(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TraceStream {
    arrivals: PoissonProcess,
    batches: BatchDistribution,
    rng: StdRng,
    t: f64,
    horizon_s: f64,
    remaining: usize,
}

impl Iterator for TraceStream {
    type Item = QuerySpec;

    fn next(&mut self) -> Option<QuerySpec> {
        if self.remaining == 0 {
            return None;
        }
        self.t += self.arrivals.sample_interarrival_s(&mut self.rng);
        if self.t >= self.horizon_s {
            self.remaining = 0;
            return None;
        }
        self.remaining -= 1;
        Some(QuerySpec {
            arrival_ns: (self.t * 1e9).round() as u64,
            batch: self.batches.sample(&mut self.rng),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> TraceGenerator {
        TraceGenerator::new(500.0, BatchDistribution::paper_default(), seed)
    }

    #[test]
    fn traces_are_reproducible() {
        let a = generator(9).generate_for(1.0);
        let b = generator(9).generate_for(1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generator(1).generate_for(1.0);
        let b = generator(2).generate_for(1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_sorted_and_within_duration() {
        let trace = generator(3).generate_for(2.0);
        assert!(trace.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(trace.iter().all(|q| q.arrival_ns < 2_000_000_000));
    }

    #[test]
    fn query_count_tracks_rate() {
        let trace = generator(5).generate_for(10.0);
        let expected = 500.0 * 10.0;
        let got = trace.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "got {got} queries, expected ≈{expected}"
        );
    }

    #[test]
    fn batches_within_support() {
        let trace = generator(7).generate_for(1.0);
        assert!(trace.iter().all(|q| (1..=32).contains(&q.batch)));
    }

    #[test]
    fn generate_count_produces_exact_count() {
        let trace = generator(11).generate_count(1234);
        assert_eq!(trace.len(), 1234);
    }

    #[test]
    fn stream_for_replays_generate_for() {
        let gen = generator(13);
        let streamed: Vec<QuerySpec> = gen.stream_for(1.5).collect();
        assert_eq!(streamed, gen.generate_for(1.5));
    }

    #[test]
    fn stream_count_replays_generate_count() {
        let gen = generator(17);
        let streamed: Vec<QuerySpec> = gen.stream_count(500).collect();
        assert_eq!(streamed, gen.generate_count(500));
        assert_eq!(streamed.len(), 500);
    }
}
