//! Windowed drift detection over a multi-model arrival stream.
//!
//! The online re-planning loop needs a *trigger*: a cheap, streaming
//! estimator that notices when the traffic a plan was built for no longer
//! matches the traffic being served. [`DriftDetector`] tumbles fixed
//! simulated-time windows over the arrivals; at every window close it
//! compares each model's arrival rate and mean batch size against the
//! baseline captured at the last (re)plan, and reports drift when either
//! moves by more than a configured relative threshold. The closed window's
//! batch histogram ([`EmpiricalBatchPmf`] per model) is retained so the
//! re-planner can feed PARIS the *observed* distribution, exactly as §IV-B
//! suggests a production server would.
//!
//! Updates are amortized O(1): the per-arrival path is counter bumps, and
//! the O(models) estimate vectors are built (allocating) only when a
//! window closes — once per window, not per query.

use crate::dist::BatchDistribution;
use crate::empirical::EmpiricalBatchPmf;

/// Tuning of the [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftDetectorConfig {
    /// Width of the tumbling observation window, nanoseconds.
    pub window_ns: u64,
    /// Relative change in per-model arrival rate or mean batch that counts
    /// as drift (e.g. `0.5` = ±50 %).
    pub rel_threshold: f64,
    /// Minimum arrivals in a window (across all models) before its
    /// estimates are trusted; sparser windows never trigger. A model's
    /// *mean-batch* comparison additionally requires the model itself to
    /// have this many arrivals in the window (small samples make the mean
    /// estimate far too noisy to act on).
    pub min_observations: u64,
}

impl DriftDetectorConfig {
    /// A detector with the given window in seconds, a ±50 % threshold and
    /// a 50-arrival trust floor.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive and finite.
    #[must_use]
    pub fn new(window_s: f64) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "window must be positive"
        );
        DriftDetectorConfig {
            window_ns: (window_s * 1e9).round() as u64,
            rel_threshold: 0.5,
            min_observations: 50,
        }
    }

    /// Overrides the relative drift threshold.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive and finite.
    #[must_use]
    pub fn with_threshold(mut self, t: f64) -> Self {
        assert!(t.is_finite() && t > 0.0, "threshold must be positive");
        self.rel_threshold = t;
        self
    }

    /// Overrides the minimum-arrivals trust floor.
    #[must_use]
    pub fn with_min_observations(mut self, n: u64) -> Self {
        self.min_observations = n;
        self
    }
}

/// What a closed window looked like when drift was flagged.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Simulated instant of the window close that triggered.
    pub at_ns: u64,
    /// Per-model arrival rate over the window, queries/second.
    pub rates_qps: Vec<f64>,
    /// Per-model mean batch size over the window (0 for silent models).
    pub mean_batch: Vec<f64>,
}

/// Streaming per-model rate/batch-mix estimator with baseline comparison —
/// the trigger of the online re-planning loop.
///
/// # Examples
///
/// ```
/// use inference_workload::{DriftDetector, DriftDetectorConfig};
///
/// let cfg = DriftDetectorConfig::new(0.1).with_min_observations(10);
/// let mut det = DriftDetector::new(1, 32, cfg);
/// // Steady 1000 q/s of batch-4 for two windows: baseline forms, no drift.
/// for i in 0..200u64 {
///     assert!(det.observe(0, i * 1_000_000, 4).is_none());
/// }
/// // Traffic collapses to 100 q/s of batch-16: flagged within a window.
/// let mut drift = None;
/// for i in 0..40u64 {
///     if let Some(d) = det.observe(0, 200_000_000 + i * 10_000_000, 16) {
///         drift = Some(d);
///         break;
///     }
/// }
/// let drift = drift.expect("rate and mix both moved far past 50 %");
/// assert!(drift.rates_qps[0] < 500.0);
/// ```
#[derive(Debug, Clone)]
pub struct DriftDetector {
    cfg: DriftDetectorConfig,
    window_end_ns: u64,
    counts: Vec<u64>,
    batch_sums: Vec<u64>,
    pmfs: Vec<EmpiricalBatchPmf>,
    /// Last *closed* trusted window, for the re-planner.
    last_rates: Vec<f64>,
    last_counts: Vec<u64>,
    last_batch_sums: Vec<u64>,
    last_pmfs: Vec<EmpiricalBatchPmf>,
    /// The baseline *epoch*: every trusted, non-drifted window since the
    /// last (re)plan folds into these running totals, so the baseline
    /// estimate sharpens over time instead of freezing one window's
    /// sampling noise.
    epoch_windows: u64,
    epoch_counts: Vec<u64>,
    epoch_batch_sums: Vec<u64>,
}

impl DriftDetector {
    /// Creates a detector for `models` models with batch support
    /// `1..=max_batch`.
    ///
    /// # Panics
    ///
    /// Panics if `models` or `max_batch` is zero.
    #[must_use]
    pub fn new(models: usize, max_batch: usize, cfg: DriftDetectorConfig) -> Self {
        assert!(models >= 1, "need at least one model");
        DriftDetector {
            cfg,
            window_end_ns: cfg.window_ns,
            counts: vec![0; models],
            batch_sums: vec![0; models],
            pmfs: (0..models)
                .map(|_| EmpiricalBatchPmf::new(max_batch))
                .collect(),
            last_rates: vec![0.0; models],
            last_counts: vec![0; models],
            last_batch_sums: vec![0; models],
            last_pmfs: (0..models)
                .map(|_| EmpiricalBatchPmf::new(max_batch))
                .collect(),
            epoch_windows: 0,
            epoch_counts: vec![0; models],
            epoch_batch_sums: vec![0; models],
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DriftDetectorConfig {
        &self.cfg
    }

    /// Records one arrival. Returns a [`DriftReport`] when this arrival
    /// closed a window whose estimates drifted past the threshold.
    ///
    /// Arrival times must be non-decreasing (they come off the simulation
    /// clock).
    pub fn observe(&mut self, model: usize, arrival_ns: u64, batch: usize) -> Option<DriftReport> {
        let mut report = None;
        while arrival_ns >= self.window_end_ns {
            if let Some(r) = self.close_window() {
                report = Some(r);
            }
        }
        self.counts[model] += 1;
        self.batch_sums[model] += batch as u64;
        self.pmfs[model].observe(batch);
        report
    }

    /// Closes the current window: promotes its estimates to "last window",
    /// compares against the baseline (or installs one), and opens the next
    /// window. Returns a report if drift was detected.
    fn close_window(&mut self) -> Option<DriftReport> {
        let at_ns = self.window_end_ns;
        let window_s = self.cfg.window_ns as f64 / 1e9;
        let total: u64 = self.counts.iter().sum();
        let rates: Vec<f64> = self.counts.iter().map(|&c| c as f64 / window_s).collect();
        let means: Vec<f64> = self
            .counts
            .iter()
            .zip(&self.batch_sums)
            .map(|(&c, &s)| if c == 0 { 0.0 } else { s as f64 / c as f64 })
            .collect();

        let mut drifted = false;
        if total >= self.cfg.min_observations {
            if self.epoch_windows > 0 {
                let t = self.cfg.rel_threshold;
                let epoch_s = self.epoch_windows as f64 * window_s;
                // Rate drift must clear the relative threshold AND be
                // statistically significant: a window expecting n Poisson
                // arrivals fluctuates by √n, so a 4σ guard keeps low-rate
                // models from thrashing the re-planner on sampling noise.
                let rate_drift =
                    self.epoch_counts
                        .iter()
                        .zip(&self.counts)
                        .any(|(&epoch_c, &c)| {
                            let base = epoch_c as f64 / epoch_s;
                            let expected = base * window_s;
                            (c as f64 / window_s - base).abs() > t * base.max(1.0)
                                && (c as f64 - expected).abs() > 4.0 * expected.max(1.0).sqrt()
                        });
                // Mean-batch drift only counts for models with enough
                // samples in the window to estimate a mean at all.
                let mix_drift = self
                    .epoch_counts
                    .iter()
                    .zip(&self.epoch_batch_sums)
                    .zip(self.counts.iter().zip(&means))
                    .any(|((&ec, &es), (&c, &m))| {
                        let base = if ec == 0 { 0.0 } else { es as f64 / ec as f64 };
                        c >= self.cfg.min_observations && (m - base).abs() > t * base.max(1.0)
                    });
                drifted = rate_drift || mix_drift;
            }
            self.last_rates = rates.clone();
            self.last_counts.copy_from_slice(&self.counts);
            self.last_batch_sums.copy_from_slice(&self.batch_sums);
            for (last, cur) in self.last_pmfs.iter_mut().zip(&mut self.pmfs) {
                std::mem::swap(last, cur);
            }
            if !drifted {
                // Fold the window into the baseline epoch: the estimate of
                // "normal" sharpens with every quiet window. Drifted
                // windows are kept out — they describe the new regime.
                self.epoch_windows += 1;
                for (e, &c) in self.epoch_counts.iter_mut().zip(&self.counts) {
                    *e += c;
                }
                for (e, &s) in self.epoch_batch_sums.iter_mut().zip(&self.batch_sums) {
                    *e += s;
                }
            }
        }

        // Open the next window.
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.batch_sums.iter_mut().for_each(|s| *s = 0);
        self.pmfs.iter_mut().for_each(EmpiricalBatchPmf::reset);
        self.window_end_ns += self.cfg.window_ns;

        drifted.then(|| DriftReport {
            at_ns,
            rates_qps: self.last_rates.clone(),
            mean_batch: means,
        })
    }

    /// Per-model arrival rates of the last trusted window, queries/second.
    #[must_use]
    pub fn observed_rates_qps(&self) -> &[f64] {
        &self.last_rates
    }

    /// The batch distribution model `m` served in the last trusted window,
    /// if it received any queries.
    #[must_use]
    pub fn observed_distribution(&self, model: usize) -> Option<BatchDistribution> {
        self.last_pmfs[model].to_distribution().ok()
    }

    /// Accepts the current traffic as the new normal: the baseline epoch
    /// restarts from the last trusted window. Call after acting on a
    /// [`DriftReport`] (re-planning), otherwise every subsequent window
    /// re-triggers against the stale baseline.
    pub fn rebaseline(&mut self) {
        self.epoch_windows = 1;
        self.epoch_counts.copy_from_slice(&self.last_counts);
        self.epoch_batch_sums.copy_from_slice(&self.last_batch_sums);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(window_s: f64) -> DriftDetector {
        DriftDetector::new(
            2,
            32,
            DriftDetectorConfig::new(window_s).with_min_observations(10),
        )
    }

    /// Feeds `per_window` evenly spaced arrivals per window for `windows`
    /// windows, returning the first drift report.
    fn feed(
        d: &mut DriftDetector,
        start_ns: u64,
        windows: u64,
        per_window: u64,
        model: usize,
        batch: usize,
    ) -> Option<DriftReport> {
        let window_ns = d.config().window_ns;
        let mut report = None;
        for w in 0..windows {
            for i in 0..per_window {
                let t = start_ns + w * window_ns + i * (window_ns / per_window);
                if let Some(r) = d.observe(model, t, batch) {
                    report.get_or_insert(r);
                }
            }
        }
        report
    }

    #[test]
    fn steady_traffic_never_triggers() {
        let mut d = det(0.1);
        assert!(feed(&mut d, 0, 20, 100, 0, 4).is_none());
    }

    #[test]
    fn rate_collapse_triggers() {
        let mut d = det(0.1);
        let w = d.config().window_ns;
        assert!(feed(&mut d, 0, 5, 100, 0, 4).is_none());
        let r = feed(&mut d, 5 * w, 3, 20, 0, 4);
        let r = r.expect("5x rate drop crosses the 50% threshold");
        assert!(r.rates_qps[0] < 500.0, "observed {:?}", r.rates_qps);
    }

    #[test]
    fn batch_mix_shift_triggers_at_constant_rate() {
        let mut d = det(0.1);
        let w = d.config().window_ns;
        assert!(feed(&mut d, 0, 5, 100, 0, 2).is_none());
        let r = feed(&mut d, 5 * w, 3, 100, 0, 16);
        assert!(r.is_some(), "2 -> 16 mean batch is drift");
    }

    #[test]
    fn rebaseline_accepts_the_new_traffic() {
        let mut d = det(0.1);
        let w = d.config().window_ns;
        feed(&mut d, 0, 5, 100, 0, 2);
        let r = feed(&mut d, 5 * w, 3, 100, 0, 16);
        assert!(r.is_some());
        d.rebaseline();
        // Same new traffic again: no further drift.
        assert!(feed(&mut d, 8 * w, 5, 100, 0, 16).is_none());
    }

    #[test]
    fn sparse_windows_are_not_trusted() {
        let mut d = det(0.1);
        let w = d.config().window_ns;
        assert!(feed(&mut d, 0, 5, 100, 0, 4).is_none());
        // 5 arrivals/window is under the 10-arrival floor: ignored even
        // though the rate collapsed 20x.
        assert!(feed(&mut d, 5 * w, 5, 5, 0, 4).is_none());
    }

    #[test]
    fn observed_distribution_reflects_last_window() {
        let mut d = det(0.1);
        feed(&mut d, 0, 2, 50, 1, 8);
        let dist = d.observed_distribution(1).expect("model 1 was observed");
        assert!(dist.pmf(8) > 0.99);
        assert!(d.observed_distribution(0).is_none(), "model 0 silent");
        assert!(d.observed_rates_qps()[1] > 0.0);
    }
}
