//! # inference-workload — query generators for ML inference servers
//!
//! Models the paper's workload assumptions (§II-A, §V): query arrivals
//! follow a **Poisson** process (MLPerf's recommendation) and query sizes
//! (input batch sizes) follow a **log-normal** distribution, batches 1–32
//! by default.
//!
//! * [`BatchDistribution`] — discretized log-normal (or custom) batch PMF,
//!   the `Dist[]` input of PARIS,
//! * [`PoissonProcess`] — exponential inter-arrival sampling,
//! * [`TraceGenerator`] — seeded, reproducible query traces (with
//!   O(1)-memory streaming variants),
//! * [`MultiTraceGenerator`] / [`PhaseSpec`] — multi-model traces with
//!   piecewise-constant traffic drift ([`TaggedQuerySpec`] arrivals),
//! * [`EmpiricalBatchPmf`] — the online histogram a production server would
//!   collect to feed PARIS,
//! * [`DriftDetector`] — the windowed rate/batch-mix estimator that
//!   triggers online re-planning.
//!
//! ```
//! use inference_workload::{BatchDistribution, TraceGenerator};
//!
//! let gen = TraceGenerator::new(100.0, BatchDistribution::paper_default(), 7);
//! let trace = gen.generate_for(1.0);
//! assert!(trace.iter().all(|q| q.batch >= 1 && q.batch <= 32));
//! ```

mod arrivals;
mod dist;
mod drift;
mod empirical;
mod multi;
mod trace;

pub use arrivals::PoissonProcess;
pub use dist::{BatchDistribution, BuildDistributionError};
pub use drift::{DriftDetector, DriftDetectorConfig, DriftReport};
pub use empirical::EmpiricalBatchPmf;
pub use multi::{
    MultiTraceGenerator, MultiTraceStream, PhaseSpec, PinnedTraceStream, TaggedQuerySpec,
};
pub use trace::{QuerySpec, TraceGenerator, TraceStream};
