//! Poisson query-arrival process (MLPerf's recommended arrival model,
//! paper §V).

use rand::Rng;

/// A homogeneous Poisson arrival process with exponential inter-arrival
/// times.
///
/// # Examples
///
/// ```
/// use inference_workload::PoissonProcess;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let process = PoissonProcess::new(100.0); // 100 queries/sec
/// let mut rng = StdRng::seed_from_u64(1);
/// let gap = process.sample_interarrival_s(&mut rng);
/// assert!(gap > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoissonProcess {
    rate_qps: f64,
}

impl PoissonProcess {
    /// Creates a process with the given mean arrival rate in queries per
    /// second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_qps` is not positive and finite.
    #[must_use]
    pub fn new(rate_qps: f64) -> Self {
        assert!(
            rate_qps.is_finite() && rate_qps > 0.0,
            "arrival rate must be positive and finite"
        );
        PoissonProcess { rate_qps }
    }

    /// Mean arrival rate, queries per second.
    #[must_use]
    pub fn rate_qps(&self) -> f64 {
        self.rate_qps
    }

    /// Draws one exponential inter-arrival gap, in seconds.
    pub fn sample_interarrival_s<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-transform: -ln(1-U)/λ with U ∈ [0,1). 1-U ∈ (0,1] avoids
        // ln(0).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.rate_qps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_interarrival_is_reciprocal_rate() {
        let p = PoissonProcess::new(250.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| p.sample_interarrival_s(&mut rng)).sum();
        let mean = total / n as f64;
        assert!(
            (mean - 1.0 / 250.0).abs() / (1.0 / 250.0) < 0.02,
            "mean gap {mean:.6}"
        );
    }

    #[test]
    fn gaps_are_positive_and_finite() {
        let p = PoissonProcess::new(10.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let g = p.sample_interarrival_s(&mut rng);
            assert!(g.is_finite() && g >= 0.0);
        }
    }

    #[test]
    fn exponential_memoryless_cv_close_to_one() {
        // Coefficient of variation of an exponential is 1.
        let p = PoissonProcess::new(50.0);
        let mut rng = StdRng::seed_from_u64(17);
        let n = 100_000;
        let gaps: Vec<f64> = (0..n).map(|_| p.sample_interarrival_s(&mut rng)).collect();
        let mean = gaps.iter().sum::<f64>() / n as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.03, "cv {cv}");
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_rate_panics() {
        let _ = PoissonProcess::new(0.0);
    }
}
