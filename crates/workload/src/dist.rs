//! Discretized batch-size distributions.
//!
//! Prior work (and §II-A/§V of the paper) observes that inference query
//! sizes follow a **log-normal** distribution; the evaluation uses batch
//! sizes 1–32 with a default variance and sweeps σ ∈ {0.3, 0.9, 1.8} and
//! the max batch ∈ {16, 32, 64} in the sensitivity study.

use std::fmt;

use rand::Rng;

/// Error returned when constructing a [`BatchDistribution`] from invalid
/// probability masses.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildDistributionError {
    reason: String,
}

impl fmt::Display for BuildDistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid batch distribution: {}", self.reason)
    }
}

impl std::error::Error for BuildDistributionError {}

/// A probability mass function over batch sizes `1..=max_batch`.
///
/// This is the `Dist[]` input of PARIS (Algorithm 1, line 3): the likelihood
/// that an arriving query carries each batch size.
///
/// # Examples
///
/// ```
/// use inference_workload::BatchDistribution;
///
/// let dist = BatchDistribution::log_normal(32, 0.9);
/// let total: f64 = (1..=32).map(|b| dist.pmf(b)).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// // Log-normal mass is concentrated at small-to-medium batches.
/// assert!(dist.pmf(4) > dist.pmf(32));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatchDistribution {
    /// `pmf[i]` is the probability of batch size `i + 1`.
    pmf: Vec<f64>,
    /// Cumulative distribution for inverse-transform sampling.
    cdf: Vec<f64>,
}

impl BatchDistribution {
    /// The paper's default log-normal σ.
    pub const DEFAULT_SIGMA: f64 = 0.9;
    /// The paper's default maximum batch size.
    pub const DEFAULT_MAX_BATCH: usize = 32;

    /// The evaluation's default distribution: log-normal over 1..=32 with
    /// σ = 0.9.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::log_normal(Self::DEFAULT_MAX_BATCH, Self::DEFAULT_SIGMA)
    }

    /// A log-normal distribution over `1..=max_batch` with the given shape
    /// parameter σ and the location μ chosen so the median batch is 4
    /// (matching at-scale web-service observations).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is 0 or σ is not positive and finite.
    #[must_use]
    pub fn log_normal(max_batch: usize, sigma: f64) -> Self {
        Self::log_normal_with_median(max_batch, sigma, 4.0)
    }

    /// A log-normal distribution with an explicit median batch size.
    ///
    /// The continuous log-normal is discretized by integrating each unit
    /// bin (with the first and last bins absorbing the tails), then
    /// renormalizing.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is 0, σ is not positive and finite, or the
    /// median is not positive.
    #[must_use]
    pub fn log_normal_with_median(max_batch: usize, sigma: f64, median: f64) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "sigma must be positive and finite"
        );
        assert!(median > 0.0, "median must be positive");
        let mu = median.ln();
        let cdf_at = |x: f64| normal_cdf((x.ln() - mu) / sigma);
        let mut pmf = Vec::with_capacity(max_batch);
        for b in 1..=max_batch {
            let lo = if b == 1 { 0.0 } else { cdf_at(b as f64 - 0.5) };
            let hi = if b == max_batch {
                1.0
            } else {
                cdf_at(b as f64 + 0.5)
            };
            pmf.push((hi - lo).max(0.0));
        }
        Self::from_pmf(pmf).expect("log-normal discretization is always valid")
    }

    /// Builds a distribution from raw (not necessarily normalized) masses
    /// for batch sizes `1..=masses.len()`.
    ///
    /// # Errors
    ///
    /// Returns an error if `masses` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn from_pmf(masses: Vec<f64>) -> Result<Self, BuildDistributionError> {
        if masses.is_empty() {
            return Err(BuildDistributionError {
                reason: "no batch sizes given".to_owned(),
            });
        }
        if masses.iter().any(|&m| !m.is_finite() || m < 0.0) {
            return Err(BuildDistributionError {
                reason: "masses must be finite and non-negative".to_owned(),
            });
        }
        let total: f64 = masses.iter().sum();
        if total <= 0.0 {
            return Err(BuildDistributionError {
                reason: "masses sum to zero".to_owned(),
            });
        }
        let pmf: Vec<f64> = masses.iter().map(|m| m / total).collect();
        let mut cdf = Vec::with_capacity(pmf.len());
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        // Guard the tail against floating-point shortfall.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(BatchDistribution { pmf, cdf })
    }

    /// A uniform distribution over `1..=max_batch`.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is 0.
    #[must_use]
    pub fn uniform(max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self::from_pmf(vec![1.0; max_batch]).expect("uniform masses are valid")
    }

    /// A distribution that always produces `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is 0.
    #[must_use]
    pub fn constant(batch: usize) -> Self {
        assert!(batch >= 1, "batch must be at least 1");
        let mut masses = vec![0.0; batch];
        masses[batch - 1] = 1.0;
        Self::from_pmf(masses).expect("constant mass is valid")
    }

    /// Probability of batch size `b` (zero outside `1..=max_batch`).
    #[must_use]
    pub fn pmf(&self, b: usize) -> f64 {
        if b == 0 {
            return 0.0;
        }
        self.pmf.get(b - 1).copied().unwrap_or(0.0)
    }

    /// The largest batch size with non-zero support range.
    #[must_use]
    pub fn max_batch(&self) -> usize {
        self.pmf.len()
    }

    /// Expected batch size.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(i, &p)| (i + 1) as f64 * p)
            .sum()
    }

    /// Draws one batch size by inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.pmf.len()),
        }
    }
}

impl fmt::Display for BatchDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch pmf over 1..={} (mean {:.2})",
            self.max_batch(),
            self.mean()
        )
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (formula 7.1.26, |error| < 1.5e-7 — ample for workload shaping).
fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_normal_sums_to_one() {
        for (max, sigma) in [(16, 0.3), (32, 0.9), (64, 1.8)] {
            let d = BatchDistribution::log_normal(max, sigma);
            let total: f64 = (1..=max).map(|b| d.pmf(b)).sum();
            assert!((total - 1.0).abs() < 1e-9, "σ={sigma}: total {total}");
        }
    }

    #[test]
    fn larger_sigma_means_heavier_tail() {
        let narrow = BatchDistribution::log_normal(32, 0.3);
        let wide = BatchDistribution::log_normal(32, 1.8);
        let tail = |d: &BatchDistribution| (17..=32).map(|b| d.pmf(b)).sum::<f64>();
        assert!(tail(&wide) > 4.0 * tail(&narrow));
    }

    #[test]
    fn median_lands_near_four() {
        let d = BatchDistribution::paper_default();
        let below: f64 = (1..=4).map(|b| d.pmf(b)).sum();
        assert!((0.35..0.75).contains(&below), "P(b≤4) = {below}");
    }

    #[test]
    fn sampling_matches_pmf() {
        let d = BatchDistribution::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = vec![0usize; d.max_batch()];
        for _ in 0..n {
            counts[d.sample(&mut rng) - 1] += 1;
        }
        for b in 1..=d.max_batch() {
            let expected = d.pmf(b);
            let got = counts[b - 1] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "batch {b}: sampled {got:.4} vs pmf {expected:.4}"
            );
        }
    }

    #[test]
    fn sample_always_in_support() {
        let d = BatchDistribution::log_normal(8, 1.8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let b = d.sample(&mut rng);
            assert!((1..=8).contains(&b));
        }
    }

    #[test]
    fn constant_distribution() {
        let d = BatchDistribution::constant(5);
        assert_eq!(d.pmf(5), 1.0);
        assert_eq!(d.pmf(4), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(d.sample(&mut rng), 5);
        assert_eq!(d.mean(), 5.0);
    }

    #[test]
    fn uniform_distribution() {
        let d = BatchDistribution::uniform(4);
        for b in 1..=4 {
            assert!((d.pmf(b) - 0.25).abs() < 1e-12);
        }
        assert!((d.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn from_pmf_normalizes() {
        let d = BatchDistribution::from_pmf(vec![2.0, 2.0]).unwrap();
        assert!((d.pmf(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_pmf_rejects_garbage() {
        assert!(BatchDistribution::from_pmf(vec![]).is_err());
        assert!(BatchDistribution::from_pmf(vec![-1.0, 2.0]).is_err());
        assert!(BatchDistribution::from_pmf(vec![f64::NAN]).is_err());
        assert!(BatchDistribution::from_pmf(vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn pmf_outside_support_is_zero() {
        let d = BatchDistribution::uniform(4);
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.pmf(5), 0.0);
    }

    #[test]
    fn erf_reference_values() {
        // erf(0)=0, erf(1)≈0.8427, erf(-1)≈-0.8427, erf(2)≈0.9953.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-5);
    }
}
