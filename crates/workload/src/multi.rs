//! Multi-model query traces with piecewise-constant traffic drift.
//!
//! A production reconfigurable server hosts several models at once, and
//! each model's traffic — arrival rate *and* batch mix — shifts over the
//! day. [`MultiTraceGenerator`] models that as a sequence of
//! [`PhaseSpec`]s: within one phase every model is a homogeneous Poisson
//! process with a fixed batch distribution; at a phase boundary rates and
//! mixes switch. Because exponential inter-arrivals are memoryless,
//! re-sampling the pending gap at each boundary with the new rate yields an
//! exact piecewise-constant-rate Poisson process.
//!
//! Per-model streams are seeded independently (`seed + model`), so adding
//! or re-rating one model never perturbs another model's arrivals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arrivals::PoissonProcess;
use crate::dist::BatchDistribution;
use crate::trace::QuerySpec;

/// A [`QuerySpec`] tagged with the model it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaggedQuerySpec {
    /// Index of the model this query requests (into the server's model
    /// list).
    pub model: usize,
    /// The arrival time and batch size.
    pub spec: QuerySpec,
}

/// One traffic phase: for `duration_s` simulated seconds, model `m`
/// arrives at `models[m].0` queries/second with batch mix `models[m].1`.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Length of the phase in simulated seconds.
    pub duration_s: f64,
    /// Per-model `(rate_qps, batch distribution)` during the phase. A rate
    /// of zero silences the model for the phase.
    pub models: Vec<(f64, BatchDistribution)>,
    /// Optional per-shard routing weights for this phase
    /// ([`with_shard_weights`](Self::with_shard_weights)): queries emitted
    /// by [`MultiTraceGenerator::stream_pinned`] are pinned to shard `s`
    /// with probability `weights[s] / Σ weights`. `None` (the default)
    /// leaves the phase's queries unpinned — the cluster router decides.
    pub shard_weights: Option<Vec<f64>>,
}

impl PhaseSpec {
    /// Creates a phase (unpinned — no shard weights).
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive and finite, `models` is
    /// empty, or any rate is negative or not finite.
    #[must_use]
    pub fn new(duration_s: f64, models: Vec<(f64, BatchDistribution)>) -> Self {
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "phase duration must be positive"
        );
        assert!(!models.is_empty(), "phase needs at least one model");
        for (rate, _) in &models {
            assert!(rate.is_finite() && *rate >= 0.0, "rates must be >= 0");
        }
        PhaseSpec {
            duration_s,
            models,
            shard_weights: None,
        }
    }

    /// Gives this phase per-shard routing weights — the knob that makes
    /// skewed per-shard traffic (one hot shard among replicas) and
    /// failure-coincident surges (a phase that piles its weight onto the
    /// shard about to fail) expressible in a scenario. Weights need not be
    /// normalized.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, or any weight is negative or not
    /// finite, or they sum to zero.
    #[must_use]
    pub fn with_shard_weights(mut self, weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one shard weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "shard weights must be >= 0"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "shard weights must not all be zero"
        );
        self.shard_weights = Some(weights);
        self
    }
}

/// Generates reproducible multi-model traces across drifting phases — the
/// input of `MultiModelServer` runs.
///
/// # Examples
///
/// ```
/// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
///
/// let small = BatchDistribution::log_normal_with_median(32, 0.9, 2.0);
/// let large = BatchDistribution::log_normal_with_median(32, 0.9, 10.0);
/// // Model 0 dominates the first second, model 1 the next — and model 1's
/// // batch mix grows heavier as it takes over.
/// let gen = MultiTraceGenerator::new(
///     vec![
///         PhaseSpec::new(1.0, vec![(300.0, small.clone()), (50.0, small.clone())]),
///         PhaseSpec::new(1.0, vec![(50.0, small), (300.0, large)]),
///     ],
///     7,
/// );
/// let trace = gen.generate();
/// assert!(trace.windows(2).all(|w| w[0].spec.arrival_ns <= w[1].spec.arrival_ns));
/// assert!(trace.iter().any(|q| q.model == 0) && trace.iter().any(|q| q.model == 1));
/// ```
#[derive(Debug, Clone)]
pub struct MultiTraceGenerator {
    phases: Vec<PhaseSpec>,
    seed: u64,
}

impl MultiTraceGenerator {
    /// Creates a generator from a non-empty phase schedule. All phases
    /// must describe the same number of models.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or the phases disagree on model count.
    #[must_use]
    pub fn new(phases: Vec<PhaseSpec>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        let models = phases[0].models.len();
        assert!(
            phases.iter().all(|p| p.models.len() == models),
            "every phase must cover the same models"
        );
        MultiTraceGenerator { phases, seed }
    }

    /// Number of models the schedule covers.
    #[must_use]
    pub fn model_count(&self) -> usize {
        self.phases[0].models.len()
    }

    /// Total simulated duration across all phases, seconds.
    #[must_use]
    pub fn total_duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// The phase schedule.
    #[must_use]
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// The same drifting schedule with every model's rate in every phase
    /// multiplied by `scale` — the knob a latency-bounded *scale* search
    /// turns: the shape of the drift is preserved while the offered load
    /// sweeps. Batch mixes, phase lengths and the seed are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
    ///
    /// let d = BatchDistribution::paper_default();
    /// let gen = MultiTraceGenerator::new(vec![PhaseSpec::new(1.0, vec![(100.0, d)])], 3);
    /// let heavy = gen.with_rate_scale(4.0);
    /// assert!(heavy.generate().len() > 2 * gen.generate().len());
    /// ```
    #[must_use]
    pub fn with_rate_scale(&self, scale: f64) -> MultiTraceGenerator {
        assert!(
            scale.is_finite() && scale > 0.0,
            "rate scale must be positive"
        );
        MultiTraceGenerator {
            phases: self
                .phases
                .iter()
                .map(|p| PhaseSpec {
                    duration_s: p.duration_s,
                    models: p
                        .models
                        .iter()
                        .map(|(rate, dist)| (rate * scale, dist.clone()))
                        .collect(),
                    shard_weights: p.shard_weights.clone(),
                })
                .collect(),
            seed: self.seed,
        }
    }

    /// Streams the merged arrival sequence (ascending `arrival_ns`,
    /// ties broken by model index) without materializing it.
    #[must_use]
    pub fn stream(&self) -> MultiTraceStream {
        let models = self.model_count();
        let mut lanes: Vec<ModelLane> = (0..models)
            .map(|m| ModelLane {
                rng: StdRng::seed_from_u64(self.seed.wrapping_add(m as u64)),
                t_s: 0.0,
                phase: 0,
                next: None,
            })
            .collect();
        // Phase boundaries as prefix sums.
        let mut ends = Vec::with_capacity(self.phases.len());
        let mut acc = 0.0;
        for p in &self.phases {
            acc += p.duration_s;
            ends.push(acc);
        }
        for (m, lane) in lanes.iter_mut().enumerate() {
            lane.advance(m, &self.phases, &ends);
        }
        MultiTraceStream {
            phases: self.phases.clone(),
            phase_ends: ends,
            lanes,
        }
    }

    /// Materializes the whole merged trace.
    #[must_use]
    pub fn generate(&self) -> Vec<TaggedQuerySpec> {
        self.stream().collect()
    }

    /// Streams the merged sequence with a per-query **shard pin** sampled
    /// from each phase's [`PhaseSpec::shard_weights`] (`None` for queries
    /// of phases without weights — those stay router-routed). The pins
    /// come from a dedicated RNG lane, so the `TaggedQuerySpec`s are
    /// **exactly** the plain [`stream`](Self::stream)'s — adding or
    /// removing shard skew never perturbs arrival times or batches.
    ///
    /// # Examples
    ///
    /// ```
    /// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
    ///
    /// let d = BatchDistribution::paper_default();
    /// // All of this phase's traffic piles onto shard 0.
    /// let gen = MultiTraceGenerator::new(
    ///     vec![PhaseSpec::new(0.5, vec![(200.0, d)]).with_shard_weights(vec![1.0, 0.0])],
    ///     7,
    /// );
    /// assert!(gen.stream_pinned().all(|(pin, _)| pin == Some(0)));
    /// ```
    #[must_use]
    pub fn stream_pinned(&self) -> PinnedTraceStream {
        let mut ends_ns = Vec::with_capacity(self.phases.len());
        let mut acc = 0.0;
        for p in &self.phases {
            acc += p.duration_s;
            ends_ns.push((acc * 1e9).round() as u64);
        }
        PinnedTraceStream {
            inner: self.stream(),
            shard_weights: self
                .phases
                .iter()
                .map(|p| p.shard_weights.clone())
                .collect(),
            phase_ends_ns: ends_ns,
            phase: 0,
            rng: StdRng::seed_from_u64(self.seed ^ SHARD_PIN_SALT),
        }
    }
}

/// Seed salt separating the shard-pin RNG lane from the per-model arrival
/// lanes (which use `seed + model`).
const SHARD_PIN_SALT: u64 = 0x5AD0_71E5_0F5E_ED15;

/// One model's in-progress Poisson stream.
#[derive(Debug)]
struct ModelLane {
    rng: StdRng,
    t_s: f64,
    phase: usize,
    next: Option<TaggedQuerySpec>,
}

impl ModelLane {
    /// Samples this lane's next arrival, crossing phase boundaries by
    /// memoryless re-sampling, and parks it in `next` (`None` at end of
    /// schedule).
    fn advance(&mut self, model: usize, phases: &[PhaseSpec], ends: &[f64]) {
        self.next = None;
        while self.phase < phases.len() {
            let (rate, dist) = &phases[self.phase].models[model];
            if *rate <= 0.0 {
                // Silent phase: jump to its end.
                self.t_s = ends[self.phase];
                self.phase += 1;
                continue;
            }
            let gap = PoissonProcess::new(*rate).sample_interarrival_s(&mut self.rng);
            let t = self.t_s + gap;
            if t >= ends[self.phase] {
                // The gap crosses the boundary: restart at the boundary
                // with the next phase's rate (exact for exponentials).
                self.t_s = ends[self.phase];
                self.phase += 1;
                continue;
            }
            self.t_s = t;
            self.next = Some(TaggedQuerySpec {
                model,
                spec: QuerySpec {
                    arrival_ns: (t * 1e9).round() as u64,
                    batch: dist.sample(&mut self.rng),
                },
            });
            return;
        }
    }
}

/// The lazy shard-pinned stream — see
/// [`MultiTraceGenerator::stream_pinned`]. Yields
/// `(Option<shard>, TaggedQuerySpec)` pairs, the cluster's pinned-arrival
/// input shape.
#[derive(Debug)]
pub struct PinnedTraceStream {
    inner: MultiTraceStream,
    /// Per-phase shard weights (`None` = unpinned phase).
    shard_weights: Vec<Option<Vec<f64>>>,
    /// Phase end timestamps, nanoseconds (prefix sums).
    phase_ends_ns: Vec<u64>,
    /// Cursor into the phases (arrivals are non-decreasing).
    phase: usize,
    /// The dedicated pin-sampling lane.
    rng: StdRng,
}

impl Iterator for PinnedTraceStream {
    type Item = (Option<usize>, TaggedQuerySpec);

    fn next(&mut self) -> Option<(Option<usize>, TaggedQuerySpec)> {
        let q = self.inner.next()?;
        while self.phase + 1 < self.phase_ends_ns.len()
            && q.spec.arrival_ns >= self.phase_ends_ns[self.phase]
        {
            self.phase += 1;
        }
        let pin = self.shard_weights[self.phase].as_ref().map(|weights| {
            let total: f64 = weights.iter().sum();
            let mut draw: f64 = self.rng.gen::<f64>() * total;
            let mut pick = weights.len() - 1;
            for (s, &w) in weights.iter().enumerate() {
                draw -= w;
                if draw < 0.0 {
                    pick = s;
                    break;
                }
            }
            pick
        });
        Some((pin, q))
    }
}

/// The lazy merged multi-model stream — see [`MultiTraceGenerator::stream`].
#[derive(Debug)]
pub struct MultiTraceStream {
    phases: Vec<PhaseSpec>,
    phase_ends: Vec<f64>,
    lanes: Vec<ModelLane>,
}

impl Iterator for MultiTraceStream {
    type Item = TaggedQuerySpec;

    fn next(&mut self) -> Option<TaggedQuerySpec> {
        // Model counts are small (a handful); a linear min scan beats a
        // heap and keeps ties deterministic by model index.
        let winner = self
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(m, lane)| lane.next.map(|q| (q.spec.arrival_ns, m)))
            .min()?
            .1;
        let out = self.lanes[winner].next;
        self.lanes[winner].advance(winner, &self.phases, &self.phase_ends);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;

    fn two_phase() -> MultiTraceGenerator {
        let d = BatchDistribution::paper_default();
        MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.0, vec![(400.0, d.clone()), (100.0, d.clone())]),
                PhaseSpec::new(1.0, vec![(100.0, d.clone()), (400.0, d)]),
            ],
            3,
        )
    }

    #[test]
    fn merged_stream_is_sorted_and_reproducible() {
        let gen = two_phase();
        let a = gen.generate();
        let b = gen.generate();
        assert_eq!(a, b);
        assert!(a
            .windows(2)
            .all(|w| w[0].spec.arrival_ns <= w[1].spec.arrival_ns));
        let horizon = (gen.total_duration_s() * 1e9) as u64;
        assert!(a.iter().all(|q| q.spec.arrival_ns < horizon));
    }

    #[test]
    fn phase_rates_shape_per_model_counts() {
        let trace = two_phase().generate();
        let in_phase = |q: &TaggedQuerySpec, lo: f64, hi: f64| {
            (q.spec.arrival_ns as f64 / 1e9) >= lo && (q.spec.arrival_ns as f64 / 1e9) < hi
        };
        let count = |model: usize, lo: f64, hi: f64| {
            trace
                .iter()
                .filter(|q| q.model == model && in_phase(q, lo, hi))
                .count() as f64
        };
        // 4:1 configured ratios should be visible (within Poisson noise).
        assert!(count(0, 0.0, 1.0) > 2.0 * count(1, 0.0, 1.0));
        assert!(count(1, 1.0, 2.0) > 2.0 * count(0, 1.0, 2.0));
    }

    #[test]
    fn single_model_single_phase_matches_trace_generator() {
        // Degeneration: one model, one phase is exactly a TraceGenerator
        // trace (same seed, same sampling order).
        let d = BatchDistribution::paper_default();
        let multi =
            MultiTraceGenerator::new(vec![PhaseSpec::new(1.5, vec![(250.0, d.clone())])], 11)
                .generate();
        let single = TraceGenerator::new(250.0, d, 11).generate_for(1.5);
        let specs: Vec<QuerySpec> = multi.iter().map(|q| q.spec).collect();
        assert_eq!(specs, single);
        assert!(multi.iter().all(|q| q.model == 0));
    }

    #[test]
    fn rate_scale_preserves_shape_and_scales_counts() {
        let gen = two_phase();
        let base = gen.generate().len() as f64;
        let scaled = gen.with_rate_scale(3.0);
        assert_eq!(scaled.total_duration_s(), gen.total_duration_s());
        assert_eq!(scaled.model_count(), gen.model_count());
        let n = scaled.generate().len() as f64;
        assert!(
            (n / base - 3.0).abs() < 0.3,
            "3x rates should triple arrivals (got {n} vs {base})"
        );
    }

    #[test]
    fn zero_rate_silences_a_model() {
        let d = BatchDistribution::paper_default();
        let gen = MultiTraceGenerator::new(
            vec![PhaseSpec::new(1.0, vec![(200.0, d.clone()), (0.0, d)])],
            5,
        );
        let trace = gen.generate();
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|q| q.model == 0));
    }

    #[test]
    fn pinned_stream_preserves_the_plain_stream_exactly() {
        // Skew must be free: the pin lane is separate from the arrival
        // lanes, so pinning changes nothing about the queries themselves.
        let d = BatchDistribution::paper_default();
        let plain = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(0.7, vec![(300.0, d.clone()), (100.0, d.clone())]),
                PhaseSpec::new(0.7, vec![(100.0, d.clone()), (300.0, d.clone())]),
            ],
            9,
        );
        let skewed = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(0.7, vec![(300.0, d.clone()), (100.0, d.clone())])
                    .with_shard_weights(vec![3.0, 1.0]),
                PhaseSpec::new(0.7, vec![(100.0, d.clone()), (300.0, d)]),
            ],
            9,
        );
        let queries: Vec<TaggedQuerySpec> = skewed.stream_pinned().map(|(_, q)| q).collect();
        assert_eq!(queries, plain.generate());
    }

    #[test]
    fn shard_weights_pin_per_phase_and_shape_the_skew() {
        let d = BatchDistribution::paper_default();
        let gen = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.0, vec![(2000.0, d.clone())]).with_shard_weights(vec![3.0, 1.0]),
                PhaseSpec::new(1.0, vec![(2000.0, d)]),
            ],
            13,
        );
        let pinned: Vec<(Option<usize>, TaggedQuerySpec)> = gen.stream_pinned().collect();
        let boundary = 1_000_000_000u64;
        let phase1: Vec<&(Option<usize>, TaggedQuerySpec)> = pinned
            .iter()
            .filter(|(_, q)| q.spec.arrival_ns < boundary)
            .collect();
        // Weighted phase: every query pinned, skew ≈ 3:1.
        assert!(phase1.iter().all(|(pin, _)| pin.is_some()));
        let to_hot = phase1.iter().filter(|(pin, _)| *pin == Some(0)).count() as f64;
        let ratio = to_hot / phase1.len() as f64;
        assert!(
            (0.70..0.80).contains(&ratio),
            "3:1 weights give ~75% to shard 0, got {ratio}"
        );
        // Unweighted phase: nothing pinned.
        assert!(pinned
            .iter()
            .filter(|(_, q)| q.spec.arrival_ns >= boundary)
            .all(|(pin, _)| pin.is_none()));
        // Deterministic across calls.
        let again: Vec<(Option<usize>, TaggedQuerySpec)> = gen.stream_pinned().collect();
        assert_eq!(pinned, again);
    }

    #[test]
    fn rate_scale_preserves_shard_weights() {
        let d = BatchDistribution::paper_default();
        let gen = MultiTraceGenerator::new(
            vec![PhaseSpec::new(0.5, vec![(100.0, d)]).with_shard_weights(vec![0.0, 1.0])],
            5,
        );
        let scaled = gen.with_rate_scale(2.0);
        assert!(scaled.stream_pinned().all(|(pin, _)| pin == Some(1)));
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_shard_weights_panic() {
        let d = BatchDistribution::paper_default();
        let _ = PhaseSpec::new(1.0, vec![(10.0, d)]).with_shard_weights(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "same models")]
    fn mismatched_phase_model_counts_panic() {
        let d = BatchDistribution::paper_default();
        let _ = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.0, vec![(100.0, d.clone())]),
                PhaseSpec::new(1.0, vec![(100.0, d.clone()), (100.0, d)]),
            ],
            1,
        );
    }
}
