//! Multi-model query traces with piecewise-constant traffic drift.
//!
//! A production reconfigurable server hosts several models at once, and
//! each model's traffic — arrival rate *and* batch mix — shifts over the
//! day. [`MultiTraceGenerator`] models that as a sequence of
//! [`PhaseSpec`]s: within one phase every model is a homogeneous Poisson
//! process with a fixed batch distribution; at a phase boundary rates and
//! mixes switch. Because exponential inter-arrivals are memoryless,
//! re-sampling the pending gap at each boundary with the new rate yields an
//! exact piecewise-constant-rate Poisson process.
//!
//! Per-model streams are seeded independently (`seed + model`), so adding
//! or re-rating one model never perturbs another model's arrivals.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::arrivals::PoissonProcess;
use crate::dist::BatchDistribution;
use crate::trace::QuerySpec;

/// A [`QuerySpec`] tagged with the model it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaggedQuerySpec {
    /// Index of the model this query requests (into the server's model
    /// list).
    pub model: usize,
    /// The arrival time and batch size.
    pub spec: QuerySpec,
}

/// One traffic phase: for `duration_s` simulated seconds, model `m`
/// arrives at `models[m].0` queries/second with batch mix `models[m].1`.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Length of the phase in simulated seconds.
    pub duration_s: f64,
    /// Per-model `(rate_qps, batch distribution)` during the phase. A rate
    /// of zero silences the model for the phase.
    pub models: Vec<(f64, BatchDistribution)>,
}

impl PhaseSpec {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not positive and finite, `models` is
    /// empty, or any rate is negative or not finite.
    #[must_use]
    pub fn new(duration_s: f64, models: Vec<(f64, BatchDistribution)>) -> Self {
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "phase duration must be positive"
        );
        assert!(!models.is_empty(), "phase needs at least one model");
        for (rate, _) in &models {
            assert!(rate.is_finite() && *rate >= 0.0, "rates must be >= 0");
        }
        PhaseSpec { duration_s, models }
    }
}

/// Generates reproducible multi-model traces across drifting phases — the
/// input of `MultiModelServer` runs.
///
/// # Examples
///
/// ```
/// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
///
/// let small = BatchDistribution::log_normal_with_median(32, 0.9, 2.0);
/// let large = BatchDistribution::log_normal_with_median(32, 0.9, 10.0);
/// // Model 0 dominates the first second, model 1 the next — and model 1's
/// // batch mix grows heavier as it takes over.
/// let gen = MultiTraceGenerator::new(
///     vec![
///         PhaseSpec::new(1.0, vec![(300.0, small.clone()), (50.0, small.clone())]),
///         PhaseSpec::new(1.0, vec![(50.0, small), (300.0, large)]),
///     ],
///     7,
/// );
/// let trace = gen.generate();
/// assert!(trace.windows(2).all(|w| w[0].spec.arrival_ns <= w[1].spec.arrival_ns));
/// assert!(trace.iter().any(|q| q.model == 0) && trace.iter().any(|q| q.model == 1));
/// ```
#[derive(Debug, Clone)]
pub struct MultiTraceGenerator {
    phases: Vec<PhaseSpec>,
    seed: u64,
}

impl MultiTraceGenerator {
    /// Creates a generator from a non-empty phase schedule. All phases
    /// must describe the same number of models.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or the phases disagree on model count.
    #[must_use]
    pub fn new(phases: Vec<PhaseSpec>, seed: u64) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        let models = phases[0].models.len();
        assert!(
            phases.iter().all(|p| p.models.len() == models),
            "every phase must cover the same models"
        );
        MultiTraceGenerator { phases, seed }
    }

    /// Number of models the schedule covers.
    #[must_use]
    pub fn model_count(&self) -> usize {
        self.phases[0].models.len()
    }

    /// Total simulated duration across all phases, seconds.
    #[must_use]
    pub fn total_duration_s(&self) -> f64 {
        self.phases.iter().map(|p| p.duration_s).sum()
    }

    /// The phase schedule.
    #[must_use]
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// The same drifting schedule with every model's rate in every phase
    /// multiplied by `scale` — the knob a latency-bounded *scale* search
    /// turns: the shape of the drift is preserved while the offered load
    /// sweeps. Batch mixes, phase lengths and the seed are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use inference_workload::{BatchDistribution, MultiTraceGenerator, PhaseSpec};
    ///
    /// let d = BatchDistribution::paper_default();
    /// let gen = MultiTraceGenerator::new(vec![PhaseSpec::new(1.0, vec![(100.0, d)])], 3);
    /// let heavy = gen.with_rate_scale(4.0);
    /// assert!(heavy.generate().len() > 2 * gen.generate().len());
    /// ```
    #[must_use]
    pub fn with_rate_scale(&self, scale: f64) -> MultiTraceGenerator {
        assert!(
            scale.is_finite() && scale > 0.0,
            "rate scale must be positive"
        );
        MultiTraceGenerator {
            phases: self
                .phases
                .iter()
                .map(|p| PhaseSpec {
                    duration_s: p.duration_s,
                    models: p
                        .models
                        .iter()
                        .map(|(rate, dist)| (rate * scale, dist.clone()))
                        .collect(),
                })
                .collect(),
            seed: self.seed,
        }
    }

    /// Streams the merged arrival sequence (ascending `arrival_ns`,
    /// ties broken by model index) without materializing it.
    #[must_use]
    pub fn stream(&self) -> MultiTraceStream {
        let models = self.model_count();
        let mut lanes: Vec<ModelLane> = (0..models)
            .map(|m| ModelLane {
                rng: StdRng::seed_from_u64(self.seed.wrapping_add(m as u64)),
                t_s: 0.0,
                phase: 0,
                next: None,
            })
            .collect();
        // Phase boundaries as prefix sums.
        let mut ends = Vec::with_capacity(self.phases.len());
        let mut acc = 0.0;
        for p in &self.phases {
            acc += p.duration_s;
            ends.push(acc);
        }
        for (m, lane) in lanes.iter_mut().enumerate() {
            lane.advance(m, &self.phases, &ends);
        }
        MultiTraceStream {
            phases: self.phases.clone(),
            phase_ends: ends,
            lanes,
        }
    }

    /// Materializes the whole merged trace.
    #[must_use]
    pub fn generate(&self) -> Vec<TaggedQuerySpec> {
        self.stream().collect()
    }
}

/// One model's in-progress Poisson stream.
#[derive(Debug)]
struct ModelLane {
    rng: StdRng,
    t_s: f64,
    phase: usize,
    next: Option<TaggedQuerySpec>,
}

impl ModelLane {
    /// Samples this lane's next arrival, crossing phase boundaries by
    /// memoryless re-sampling, and parks it in `next` (`None` at end of
    /// schedule).
    fn advance(&mut self, model: usize, phases: &[PhaseSpec], ends: &[f64]) {
        self.next = None;
        while self.phase < phases.len() {
            let (rate, dist) = &phases[self.phase].models[model];
            if *rate <= 0.0 {
                // Silent phase: jump to its end.
                self.t_s = ends[self.phase];
                self.phase += 1;
                continue;
            }
            let gap = PoissonProcess::new(*rate).sample_interarrival_s(&mut self.rng);
            let t = self.t_s + gap;
            if t >= ends[self.phase] {
                // The gap crosses the boundary: restart at the boundary
                // with the next phase's rate (exact for exponentials).
                self.t_s = ends[self.phase];
                self.phase += 1;
                continue;
            }
            self.t_s = t;
            self.next = Some(TaggedQuerySpec {
                model,
                spec: QuerySpec {
                    arrival_ns: (t * 1e9).round() as u64,
                    batch: dist.sample(&mut self.rng),
                },
            });
            return;
        }
    }
}

/// The lazy merged multi-model stream — see [`MultiTraceGenerator::stream`].
#[derive(Debug)]
pub struct MultiTraceStream {
    phases: Vec<PhaseSpec>,
    phase_ends: Vec<f64>,
    lanes: Vec<ModelLane>,
}

impl Iterator for MultiTraceStream {
    type Item = TaggedQuerySpec;

    fn next(&mut self) -> Option<TaggedQuerySpec> {
        // Model counts are small (a handful); a linear min scan beats a
        // heap and keeps ties deterministic by model index.
        let winner = self
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(m, lane)| lane.next.map(|q| (q.spec.arrival_ns, m)))
            .min()?
            .1;
        let out = self.lanes[winner].next;
        self.lanes[winner].advance(winner, &self.phases, &self.phase_ends);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGenerator;

    fn two_phase() -> MultiTraceGenerator {
        let d = BatchDistribution::paper_default();
        MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.0, vec![(400.0, d.clone()), (100.0, d.clone())]),
                PhaseSpec::new(1.0, vec![(100.0, d.clone()), (400.0, d)]),
            ],
            3,
        )
    }

    #[test]
    fn merged_stream_is_sorted_and_reproducible() {
        let gen = two_phase();
        let a = gen.generate();
        let b = gen.generate();
        assert_eq!(a, b);
        assert!(a
            .windows(2)
            .all(|w| w[0].spec.arrival_ns <= w[1].spec.arrival_ns));
        let horizon = (gen.total_duration_s() * 1e9) as u64;
        assert!(a.iter().all(|q| q.spec.arrival_ns < horizon));
    }

    #[test]
    fn phase_rates_shape_per_model_counts() {
        let trace = two_phase().generate();
        let in_phase = |q: &TaggedQuerySpec, lo: f64, hi: f64| {
            (q.spec.arrival_ns as f64 / 1e9) >= lo && (q.spec.arrival_ns as f64 / 1e9) < hi
        };
        let count = |model: usize, lo: f64, hi: f64| {
            trace
                .iter()
                .filter(|q| q.model == model && in_phase(q, lo, hi))
                .count() as f64
        };
        // 4:1 configured ratios should be visible (within Poisson noise).
        assert!(count(0, 0.0, 1.0) > 2.0 * count(1, 0.0, 1.0));
        assert!(count(1, 1.0, 2.0) > 2.0 * count(0, 1.0, 2.0));
    }

    #[test]
    fn single_model_single_phase_matches_trace_generator() {
        // Degeneration: one model, one phase is exactly a TraceGenerator
        // trace (same seed, same sampling order).
        let d = BatchDistribution::paper_default();
        let multi =
            MultiTraceGenerator::new(vec![PhaseSpec::new(1.5, vec![(250.0, d.clone())])], 11)
                .generate();
        let single = TraceGenerator::new(250.0, d, 11).generate_for(1.5);
        let specs: Vec<QuerySpec> = multi.iter().map(|q| q.spec).collect();
        assert_eq!(specs, single);
        assert!(multi.iter().all(|q| q.model == 0));
    }

    #[test]
    fn rate_scale_preserves_shape_and_scales_counts() {
        let gen = two_phase();
        let base = gen.generate().len() as f64;
        let scaled = gen.with_rate_scale(3.0);
        assert_eq!(scaled.total_duration_s(), gen.total_duration_s());
        assert_eq!(scaled.model_count(), gen.model_count());
        let n = scaled.generate().len() as f64;
        assert!(
            (n / base - 3.0).abs() < 0.3,
            "3x rates should triple arrivals (got {n} vs {base})"
        );
    }

    #[test]
    fn zero_rate_silences_a_model() {
        let d = BatchDistribution::paper_default();
        let gen = MultiTraceGenerator::new(
            vec![PhaseSpec::new(1.0, vec![(200.0, d.clone()), (0.0, d)])],
            5,
        );
        let trace = gen.generate();
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|q| q.model == 0));
    }

    #[test]
    #[should_panic(expected = "same models")]
    fn mismatched_phase_model_counts_panic() {
        let d = BatchDistribution::paper_default();
        let _ = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.0, vec![(100.0, d.clone())]),
                PhaseSpec::new(1.0, vec![(100.0, d.clone()), (100.0, d)]),
            ],
            1,
        );
    }
}
