//! Device-calibration tour: print the analytical model's latency,
//! utilization, knees and PARIS plans per model — the numbers behind the
//! Figure 3/4 shapes and the sanity checks in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example device_calibration
//! ```

use paris_elsa::paris::find_knees;
use paris_elsa::prelude::*;

fn main() {
    let dist = BatchDistribution::paper_default();
    for kind in ModelKind::ALL {
        let m = kind.build();
        let perf = PerfModel::new(DeviceSpec::a100());
        let table = ProfileTable::profile(&m, &perf, &ProfileSize::ALL, 32);
        let knees = find_knees(&table, Default::default());
        let kstr: Vec<String> = knees
            .iter()
            .map(|k| format!("{}:{}", k.size.gpcs(), k.batch))
            .collect();
        let (budget, _) = inference_server::paper_budgets(kind);
        let plan = Paris::new(&table, &dist).plan(budget).unwrap();
        let sla = table.sla_target_ns(1.5) as f64 / 1e6;
        let r = |s: ProfileSize, b: usize| table.latency_ns(s, b) as f64 / 1e6;
        println!("{kind:>10}: knees[{}] plan={plan}", kstr.join(" "));
        println!("            SLA {sla:.1}ms | G1@26 {:.1} G2@26 {:.1} G3@26 {:.1} G7@32 {:.1} | util G1: b1 {:.0}% b4 {:.0}% b8 {:.0}%  G7: b8 {:.0}% b16 {:.0}% b32 {:.0}%",
            r(ProfileSize::G1,26), r(ProfileSize::G2,26), r(ProfileSize::G3,26), r(ProfileSize::G7,32),
            table.utilization(ProfileSize::G1,1)*100.0, table.utilization(ProfileSize::G1,4)*100.0, table.utilization(ProfileSize::G1,8)*100.0,
            table.utilization(ProfileSize::G7,8)*100.0, table.utilization(ProfileSize::G7,16)*100.0, table.utilization(ProfileSize::G7,32)*100.0);
    }
}
