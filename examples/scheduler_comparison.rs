//! Scheduler comparison: replay the paper's Figure 5/10 scenario — a
//! heterogeneous server under FIFS vs ELSA — and render the execution
//! timelines, showing FIFS sending a large query to a small idle partition
//! (SLA violation) while ELSA waits for the big partition.
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;
use paris_elsa::workload::QuerySpec;

fn main() {
    // A small heterogeneous server: one small and two large partitions,
    // exactly the Figure 5(b) setup.
    let model = ModelKind::BertBase.build();
    let perf = PerfModel::new(DeviceSpec::a100());
    let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
    let partitions = vec![ProfileSize::G1, ProfileSize::G7, ProfileSize::G7];
    let sla_ns = table.sla_target_ns(1.5);

    // The large partitions are busy when a big query A arrives; a small
    // query B follows shortly after.
    let trace = vec![
        QuerySpec {
            arrival_ns: 0,
            batch: 16,
        }, // occupies large #1
        QuerySpec {
            arrival_ns: 1_000,
            batch: 16,
        }, // occupies large #2
        QuerySpec {
            arrival_ns: 2_000_000,
            batch: 24,
        }, // query A: big
        QuerySpec {
            arrival_ns: 3_000_000,
            batch: 2,
        }, // query B: small
    ];

    for (name, scheduler) in [
        ("FIFS", SchedulerKind::Fifs),
        ("ELSA", SchedulerKind::Elsa(ElsaConfig::new(sla_ns))),
    ] {
        let server = InferenceServer::new(
            partitions.clone(),
            table.clone(),
            ServerConfig::new(scheduler).with_gantt(),
        );
        let report = server.run(&trace);
        println!("=== {name} ===");
        println!("{}", report.gantt.as_ref().expect("gantt requested"));
        for r in &report.records {
            let verdict = if r.latency().as_nanos() > sla_ns {
                "SLA VIOLATION"
            } else {
                "ok"
            };
            println!(
                "  {} (batch {:>2}) → partition {} ({}), latency {:>8.2} ms  [{verdict}]",
                r.id,
                r.batch,
                r.partition,
                partitions[r.partition],
                r.latency().as_millis_f64(),
            );
        }
        println!(
            "  p95 {:.2} ms vs SLA {:.2} ms, violations: {}\n",
            report.p95_ms(),
            sla_ns as f64 / 1e6,
            report.latency.violations(sla_ns)
        );
    }
    println!(
        "Reading: FIFS hands the big query A to the only idle (small) \
         partition and blows the SLA; ELSA's slack predictor keeps A for a \
         large partition and slots B wherever it still fits (Figure 10)."
    );
}
