//! Online re-partitioning: the "elastic" loop the paper motivates — the
//! server collects the batch-size histogram it actually serves (§IV-B), and
//! when the workload drifts, PARIS re-derives the partition set from the
//! observed distribution.
//!
//! ```text
//! cargo run --release --example online_repartitioning
//! ```

use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;
use paris_elsa::workload::EmpiricalBatchPmf;

fn measure(plan: &PartitionPlan, table: &ProfileTable, dist: &BatchDistribution, sla: u64) -> f64 {
    let server = InferenceServer::from_plan(
        plan,
        table.clone(),
        ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(sla))),
    );
    let hint = paris_elsa::server::capacity_hint_qps(&server, dist);
    let cfg = SweepConfig::new(1.0, 11, sla);
    search_latency_bounded_throughput(&server, dist, &cfg, (hint * 0.2).max(1.0))
        .latency_bounded_qps
}

fn main() {
    let model = ModelKind::ResNet50.build();
    let perf = PerfModel::new(DeviceSpec::a100());
    let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
    let sla = table.sla_target_ns(1.5);
    let budget = GpcBudget::new(48, 8);

    // Phase 1: plan for the morning workload (small batches dominate).
    let morning = BatchDistribution::log_normal_with_median(32, 0.9, 2.0);
    let plan = Paris::new(&table, &morning)
        .plan(budget)
        .expect("plan builds");
    println!("morning plan (median batch 2): {plan}");
    println!(
        "  throughput on morning traffic: {:.0} q/s",
        measure(&plan, &table, &morning, sla)
    );

    // Phase 2: the workload drifts — evening bulk traffic with much larger
    // batches. The server keeps serving with the stale plan while the
    // frontend histogram records what actually arrives (§IV-B).
    let evening = BatchDistribution::log_normal_with_median(32, 0.9, 10.0);
    let stale_qps = measure(&plan, &table, &evening, sla);
    println!("\nworkload drifts to median batch 10:");
    println!("  stale morning plan on evening traffic: {stale_qps:.0} q/s");

    let mut histogram = EmpiricalBatchPmf::new(32);
    let probe = TraceGenerator::new(500.0, evening.clone(), 3).generate_for(20.0);
    for q in &probe {
        histogram.observe(q.batch);
    }
    println!("  frontend collected {}", histogram);

    // Phase 3: PARIS re-partitions from the *observed* distribution — no
    // oracle knowledge of the true workload needed.
    let observed = histogram.to_distribution().expect("histogram is non-empty");
    let refreshed = Paris::new(&table, &observed)
        .plan(budget)
        .expect("plan builds");
    let fresh_qps = measure(&refreshed, &table, &evening, sla);
    println!("\nre-partitioned plan: {refreshed}");
    println!("  throughput on evening traffic: {fresh_qps:.0} q/s");
    println!(
        "  recovered {:.0}% over the stale plan",
        (fresh_qps / stale_qps.max(1.0) - 1.0) * 100.0
    );
}
