//! Capacity planning: sweep offered load on a MobileNet testbed and find
//! the latency-bounded throughput of the main designs — a fast, small-scale
//! version of the Figure 11 methodology for sizing a deployment.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;
use paris_elsa::server::capacity_hint_qps;

fn main() {
    let bed = Testbed::paper_default(ModelKind::MobileNet);
    let sweep_cfg = SweepConfig::new(1.0, 7, bed.sla_ns());
    println!(
        "MobileNet, {} | SLA target {:.2} ms\n",
        bed.distribution(),
        sweep_cfg.sla_ms()
    );

    for design in [
        DesignPoint::HomogeneousFifs(ProfileSize::G7),
        DesignPoint::HomogeneousFifs(ProfileSize::G3),
        DesignPoint::ParisElsa,
    ] {
        let server = bed.server(design).expect("plan builds");
        let hint = capacity_hint_qps(&server, bed.distribution());

        // A coarse manual sweep, like reading one Figure 11 curve.
        let rates: Vec<f64> = (1..=6).map(|i| hint * 0.2 * i as f64).collect();
        let points = rate_sweep(&server, bed.distribution(), &rates, &sweep_cfg);
        println!("{design}: ({} instances)", server.partitions().len());
        for p in &points {
            let marker = if p.meets_target(sweep_cfg.sla_ms()) {
                " "
            } else {
                "×"
            };
            println!(
                "  {marker} offered {:>6.0} q/s → p95 {:>8.2} ms, util {:>3.0}%",
                p.offered_qps,
                p.p95_ms,
                p.mean_utilization * 100.0
            );
        }
        let search =
            search_latency_bounded_throughput(&server, bed.distribution(), &sweep_cfg, hint * 0.2);
        println!(
            "  → latency-bounded throughput: {:.0} q/s\n",
            search.latency_bounded_qps
        );
    }
}
