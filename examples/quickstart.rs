//! Quickstart: profile a model, let PARIS partition the GPUs, schedule with
//! ELSA, and measure tail latency under a realistic query stream.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;

fn main() {
    // 1. One-time profiling: the (partition size, batch) → latency/util
    //    lookup table PARIS and ELSA both run on. On real hardware this is
    //    a ~5-minute NVML pass; here the analytical A100 model fills it in
    //    milliseconds.
    let model = ModelKind::ResNet50.build();
    let perf = PerfModel::new(DeviceSpec::a100());
    let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
    println!("profiled: {table}");

    // 2. PARIS: partition 48 GPCs across 8 A100s for a log-normal batch mix.
    let dist = BatchDistribution::paper_default();
    let plan = Paris::new(&table, &dist)
        .plan(GpcBudget::new(48, 8))
        .expect("distribution has mass and the budget fits instances");
    println!("PARIS plan: {plan}");
    for segment in plan.segments() {
        println!("  {segment}");
    }

    // 3. Build the server with ELSA scheduling against a 1.5× SLA.
    let sla_ns = table.sla_target_ns(1.5);
    let server = InferenceServer::from_plan(
        &plan,
        table,
        ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(sla_ns))),
    );

    // 4. Drive it with Poisson arrivals for five simulated seconds.
    let trace = TraceGenerator::new(1_500.0, dist, 42).generate_for(5.0);
    let report = server.run(&trace);

    println!(
        "\nserved {} queries in {:.2} simulated seconds ({:.0} q/s)",
        report.records.len(),
        report.makespan.as_secs_f64(),
        report.achieved_qps
    );
    println!(
        "p95 latency {:.2} ms (SLA {:.2} ms), violations {:.2}%, mean partition utilization {:.0}%",
        report.p95_ms(),
        sla_ns as f64 / 1e6,
        report.sla_violation_rate(sla_ns) * 100.0,
        report.mean_utilization() * 100.0
    );
}
