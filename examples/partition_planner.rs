//! Partition planner: run PARIS for every benchmark model and show the
//! derivation end to end — knees, batch segments, instance ratios, final
//! counts, and the physical MIG packing (paper Figures 7/8 and Table I).
//!
//! ```text
//! cargo run --release --example partition_planner
//! ```

use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;
use paris_elsa::server::paper_budgets;

fn main() {
    let perf = PerfModel::new(DeviceSpec::a100());
    let dist = BatchDistribution::paper_default();

    // The paper's Figure 8 worked example, reproduced numerically: two
    // partition sizes with knees B1=2, B2=4, batch frequencies
    // 20/20/40/20 %, small-GPU throughputs 40/20 q/s, large 30/20 q/s.
    println!("— Figure 8 worked example —");
    let r_small = 0.2 / 40.0 + 0.2 / 20.0;
    let r_large = 0.4 / 30.0 + 0.2 / 20.0;
    println!(
        "  R_small = 0.2/40 + 0.2/20 = {:.4}  (the paper's 1.5 'virtual small GPUs' per 100 q/s)",
        r_small
    );
    println!(
        "  R_large = 0.4/30 + 0.2/20 = {:.4}  (the paper's ~2.33 'virtual large GPUs')",
        r_large
    );
    println!("  ratio small:large = {:.3}\n", r_small / r_large);

    for kind in ModelKind::ALL {
        let model = kind.build();
        let table = ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32);
        let (budget, _) = paper_budgets(kind);
        let plan = Paris::new(&table, &dist)
            .plan(budget)
            .expect("paper budgets host at least one instance");

        println!("— {kind} ({budget}) —");
        println!("  knees:");
        for knee in plan.knees() {
            println!(
                "    {:>7}: MaxBatch_knee = {:>2} (utilization there {:.0}%)",
                knee.size.to_string(),
                knee.batch,
                knee.utilization * 100.0
            );
        }
        println!("  batch segments and instance ratios R_k:");
        for (segment, (size, r)) in plan.segments().iter().zip(plan.ratios()) {
            debug_assert_eq!(segment.size, *size);
            println!("    {segment}  (R = {r:.4})");
        }
        println!("  plan: {plan}");
        println!("  physical packing:");
        for (i, layout) in plan.layouts().iter().enumerate() {
            println!("    A100 #{i}: {layout}");
        }
        println!();
    }
}
