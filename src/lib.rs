//! # paris-elsa — reproduction of "PARIS and ELSA" (DAC 2022)
//!
//! A full-system reproduction of *PARIS and ELSA: An Elastic Scheduling
//! Algorithm for Reconfigurable Multi-GPU Inference Servers* (Kim, Choi,
//! Rhu — DAC 2022): a partitioning algorithm (PARIS) that configures
//! MIG-capable GPUs into a heterogeneous set of partitions matched to the
//! batch-size distribution, and a heterogeneity-aware scheduler (ELSA) that
//! places queries using profiled-latency SLA-slack prediction.
//!
//! The workspace layers, bottom to top:
//!
//! * [`des`] — deterministic discrete-event simulation kernel,
//! * [`dnn`] — layer-level model zoo (ShuffleNet, MobileNet, ResNet-50,
//!   BERT-base, Conformer),
//! * [`gpu`] — A100/MIG geometry and the analytical performance model,
//! * [`workload`] — Poisson arrivals and log-normal batch distributions,
//! * [`metrics`] — latency/throughput/SLA statistics,
//! * [`paris`] — the PARIS and ELSA algorithms themselves,
//! * [`server`] — the simulated multi-GPU inference server and the
//!   evaluation harness (design points, load sweeps),
//! * [`cluster`] — multi-server sharding: N server shards behind a router
//!   in one DES, with Aryl-style batch-pool capacity loaning and brownout
//!   admission control ([`cluster::ShedPolicy`]),
//! * [`faults`] — fault injection & recovery: seedable GPU/shard outage
//!   scenarios with failure domains (racks), slow-GPU degradation,
//!   drain-and-redistribute, availability accounting,
//! * [`obs`] — deterministic observability: DES-clock query flight
//!   recorder, metric registry, Chrome-trace/JSONL exporters, and an
//!   exact latency-breakdown analyzer (zero observer effect).
//!
//! ## Quickstart
//!
//! ```
//! use paris_elsa::prelude::*;
//!
//! // Build the paper's default testbed for ResNet-50 and realize the
//! // full proposal (PARIS partitioning + ELSA scheduling).
//! let bed = Testbed::paper_default(ModelKind::ResNet50);
//! let server = bed.server(DesignPoint::ParisElsa)?;
//!
//! // Drive it with a Poisson/log-normal query stream for half a second.
//! let trace = TraceGenerator::new(200.0, bed.distribution().clone(), 7)
//!     .generate_for(0.5);
//! let report = server.run(&trace);
//! println!(
//!     "p95 {:.2} ms over {} queries",
//!     report.p95_ms(),
//!     report.records.len()
//! );
//! # Ok::<(), paris_elsa::paris::PlanError>(())
//! ```

pub use des_engine as des;
pub use dnn_zoo as dnn;
pub use inference_cluster as cluster;
pub use inference_faults as faults;
pub use inference_obs as obs;
pub use inference_server as server;
pub use inference_workload as workload;
pub use mig_gpu as gpu;
pub use paris_core as paris;
pub use server_metrics as metrics;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::cluster::{
        Cluster, ClusterReport, FaultEvent, FaultTimeline, LoanDemandModel, LoanPolicy,
        RouterPolicy, ShedPolicy, SyncWindow,
    };
    pub use crate::des::{SimDuration, SimTime};
    pub use crate::dnn::{ModelGraph, ModelKind};
    pub use crate::faults::{run_with_faults, FaultDomain, FaultPlan, FaultReport, FaultTopology};
    pub use crate::gpu::{DeviceSpec, GpuLayout, PerfModel, ProfileSize};
    pub use crate::metrics::{
        latency_bounded_throughput, LatencyBreakdown, LatencyRecorder, ThroughputPoint,
        WindowedTail,
    };
    pub use crate::obs::{
        analyze, check_conservation, ChromeTraceWriter, FlightRecorder, MetricRegistry, QueryTrace,
        TraceEvent, TraceSink,
    };
    pub use crate::paris::{
        homogeneous_plan, random_plan, Elsa, ElsaConfig, GpcBudget, Paris, PartitionPlan,
        ProfileTable, ReconfigMode,
    };
    pub use crate::server::{
        parallel_doubling_search, parallel_map_indexed, rate_sweep,
        search_latency_bounded_throughput, DesignPoint, InferenceServer, ModelSpec,
        MultiModelConfig, MultiModelServer, MultiRunReport, ReplanPolicy, ReportDetail, RunReport,
        SchedulerKind, ServerConfig, SweepConfig, Testbed,
    };
    pub use crate::workload::{
        BatchDistribution, MultiTraceGenerator, PhaseSpec, QuerySpec, TaggedQuerySpec,
        TraceGenerator,
    };
}
