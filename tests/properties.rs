//! Property-based tests (proptest) on the core data structures and
//! algorithmic invariants, exercised across randomized inputs.

use proptest::prelude::*;

use paris_elsa::dnn::ModelKind;
use paris_elsa::gpu::{GpuLayout, COMPUTE_SLICES, MEM_SLICES};
use paris_elsa::paris::{ElsaState, PartitionSnapshot};
use paris_elsa::prelude::*;
use paris_elsa::server::ReportDetail;
use paris_elsa::workload::{EmpiricalBatchPmf, PoissonProcess};

fn profile_size_strategy() -> impl Strategy<Value = ProfileSize> {
    prop::sample::select(ProfileSize::ALL.to_vec())
}

fn resnet_table() -> ProfileTable {
    let model = ModelKind::ResNet50.build();
    let perf = PerfModel::new(DeviceSpec::a100());
    ProfileTable::profile(&model, &perf, &ProfileSize::ALL, 32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- MIG geometry ----------

    #[test]
    fn placements_never_overlap_and_respect_limits(
        profiles in prop::collection::vec(profile_size_strategy(), 0..8)
    ) {
        if let Ok(layout) = GpuLayout::place(&profiles) {
            // No memory-slice overlap.
            let mut occupied = [false; MEM_SLICES];
            for &(p, start) in layout.placements() {
                #[allow(clippy::needless_range_loop)] // `s` names the slice
                for s in start..start + p.mem_slices() {
                    prop_assert!(!occupied[s], "slice {s} double-booked");
                    occupied[s] = true;
                }
                prop_assert!(p.allowed_starts().contains(&start));
            }
            prop_assert!(layout.used_gpcs() <= COMPUTE_SLICES);
            prop_assert!(layout.used_mem_slices() <= MEM_SLICES);
            prop_assert_eq!(layout.instance_count(), profiles.len());
        }
    }

    #[test]
    fn placement_is_permutation_invariant(
        profiles in prop::collection::vec(profile_size_strategy(), 0..7),
        seed in 0u64..1000
    ) {
        let mut shuffled = profiles.clone();
        // Cheap deterministic shuffle.
        if shuffled.len() > 1 {
            let k = (seed as usize) % shuffled.len();
            shuffled.rotate_left(k);
        }
        prop_assert_eq!(GpuLayout::fits(&profiles), GpuLayout::fits(&shuffled));
    }

    // ---------- Workload distributions ----------

    #[test]
    fn lognormal_pmf_sums_to_one(max_batch in 1usize..=128, sigma in 0.05f64..3.0) {
        let d = BatchDistribution::log_normal(max_batch, sigma);
        let total: f64 = (1..=max_batch).map(|b| d.pmf(b)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sums to {total}");
        prop_assert!(d.mean() >= 1.0 && d.mean() <= max_batch as f64);
    }

    #[test]
    fn samples_stay_in_support(max_batch in 1usize..=64, seed in 0u64..500) {
        use rand::SeedableRng;
        let d = BatchDistribution::log_normal(max_batch, 0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let b = d.sample(&mut rng);
            prop_assert!((1..=max_batch).contains(&b));
        }
    }

    #[test]
    fn poisson_gaps_nonnegative(rate in 0.1f64..1e5, seed in 0u64..500) {
        use rand::SeedableRng;
        let p = PoissonProcess::new(rate);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            let g = p.sample_interarrival_s(&mut rng);
            prop_assert!(g.is_finite() && g >= 0.0);
        }
    }

    #[test]
    fn empirical_histogram_counts_balance(
        batches in prop::collection::vec(1usize..=64, 1..200)
    ) {
        let mut hist = EmpiricalBatchPmf::new(32);
        for &b in &batches {
            hist.observe(b);
        }
        prop_assert_eq!(hist.observations(), batches.len() as u64);
        let total: u64 = (1..=32).map(|b| hist.count(b)).sum();
        prop_assert_eq!(total, batches.len() as u64);
        let d = hist.to_distribution().unwrap();
        let mass: f64 = (1..=32).map(|b| d.pmf(b)).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    // ---------- DES engine ----------

    #[test]
    fn events_pop_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = paris_elsa::des::Simulation::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), t);
        }
        let mut prev = 0u64;
        let mut popped = 0usize;
        while let Some((at, _)) = sim.next_event() {
            prop_assert!(at.as_nanos() >= prev, "time ran backwards");
            prev = at.as_nanos();
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Random interleavings of every `EventQueue` operation against a
    /// `BinaryHeap` oracle that mirrors the sequence-number contract
    /// (unkeyed pushes key by `next_seq`; `pop_push` consumes one sequence
    /// number; the `push_pop` passthrough consumes none; `clear` keeps the
    /// counter running). Pop results, lengths, and front stamps must agree
    /// at every step, and the final drain must be identical.
    #[test]
    fn event_queue_matches_binary_heap_oracle(
        ops in prop::collection::vec((0u8..100, 0u64..2_000, 0u64..8), 1..400)
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        use paris_elsa::des::{pack_stamp, EventQueue};

        let time_of = |stamp: u128| SimTime::from_nanos((stamp >> 64) as u64);
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut oracle: BinaryHeap<Reverse<(u128, u64, u32)>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut next_id: u32 = 0;
        for &(op, raw_t, k) in &ops {
            // A sprinkle of far-future times exercises calendar re-slides.
            let t = SimTime::from_nanos(if raw_t % 53 == 0 { raw_t * 1_000_000 } else { raw_t });
            match op {
                0..=29 => {
                    oracle.push(Reverse((pack_stamp(t, seq), seq, next_id)));
                    seq += 1;
                    q.push(t, next_id);
                    next_id += 1;
                }
                30..=49 => {
                    oracle.push(Reverse((pack_stamp(t, k), seq, next_id)));
                    seq += 1;
                    q.push_keyed(t, k, next_id);
                    next_id += 1;
                }
                50..=69 => {
                    let want = oracle.pop().map(|Reverse((s, _, id))| (time_of(s), id));
                    prop_assert_eq!(q.pop(), want);
                }
                70..=84 => {
                    let want = oracle.pop().map(|Reverse((s, _, id))| (time_of(s), id));
                    oracle.push(Reverse((pack_stamp(t, k), seq, next_id)));
                    seq += 1;
                    prop_assert_eq!(q.pop_push(t, k, next_id), want);
                    next_id += 1;
                }
                85..=96 => {
                    let stamp = pack_stamp(t, k);
                    let want = match oracle.peek() {
                        Some(&Reverse((s, _, _))) if stamp >= s => {
                            let Reverse((s, _, id)) = oracle.pop().expect("peeked nonempty");
                            oracle.push(Reverse((stamp, seq, next_id)));
                            seq += 1;
                            (time_of(s), id)
                        }
                        _ => (t, next_id),
                    };
                    prop_assert_eq!(q.push_pop(t, k, next_id), want);
                    next_id += 1;
                }
                _ => {
                    oracle.clear();
                    q.clear();
                }
            }
            prop_assert_eq!(q.len(), oracle.len());
            prop_assert_eq!(q.peek_stamp(), oracle.peek().map(|&Reverse((s, _, _))| s));
        }
        while let Some(Reverse((s, _, id))) = oracle.pop() {
            prop_assert_eq!(q.pop(), Some((time_of(s), id)));
        }
        prop_assert!(q.is_empty());
    }

    // ---------- Performance model ----------

    #[test]
    fn estimates_are_finite_positive_and_bounded(
        b in 1usize..=64,
        size in profile_size_strategy()
    ) {
        let perf = PerfModel::new(DeviceSpec::a100());
        let model = ModelKind::MobileNet.build();
        let est = perf.inference(&model, b, size);
        prop_assert!(est.latency_s.is_finite() && est.latency_s > 0.0);
        prop_assert!((0.0..=1.0).contains(&est.utilization));
        prop_assert!((0.0..=1.0).contains(&est.flop_efficiency));
    }

    #[test]
    fn bigger_partitions_never_slower(b in 1usize..=64) {
        let perf = PerfModel::new(DeviceSpec::a100());
        let model = ModelKind::ResNet50.build();
        let mut prev = f64::INFINITY;
        for size in ProfileSize::ALL {
            let lat = perf.inference(&model, b, size).latency_s;
            prop_assert!(lat <= prev + 1e-12, "{size} slower than smaller partition at b={b}");
            prev = lat;
        }
    }

    // ---------- PARIS ----------

    #[test]
    fn paris_respects_any_budget(total in 7usize..=56, sigma in 0.2f64..2.0) {
        let gpus = total.div_ceil(7);
        let table = resnet_table();
        let dist = BatchDistribution::log_normal(32, sigma);
        let plan = Paris::new(&table, &dist)
            .plan(GpcBudget::new(total, gpus))
            .unwrap();
        prop_assert!(plan.total_gpcs_used() <= total);
        prop_assert!(plan.instance_count() >= 1);
        // Layout accounting agrees with counts.
        let placed: usize = plan.layouts().iter().map(|l| l.used_gpcs()).sum();
        prop_assert_eq!(placed, plan.total_gpcs_used());
        // Segments tile the batch axis exactly once.
        for b in 1..=32usize {
            let covering = plan.segments().iter().filter(|s| s.contains(b)).count();
            prop_assert_eq!(covering, 1, "batch {} covered {} times", b, covering);
        }
    }

    #[test]
    fn random_plans_fit_their_budget(seed in 0u64..200) {
        let plan = random_plan(GpcBudget::new(42, 6), seed).unwrap();
        prop_assert!(plan.total_gpcs_used() <= 42);
        for layout in plan.layouts() {
            prop_assert!(layout.used_gpcs() <= COMPUTE_SLICES);
        }
    }

    // ---------- ELSA ----------

    #[test]
    fn elsa_decision_is_valid_index_and_consistent(
        queued in prop::collection::vec((0u64..200_000_000, 0u64..50_000_000), 1..12),
        batch in 1usize..=32
    ) {
        let table = resnet_table();
        let elsa = Elsa::new(ElsaConfig::new(table.sla_target_ns(1.5)));
        let snaps: Vec<PartitionSnapshot> = queued
            .iter()
            .enumerate()
            .map(|(i, &(q, r))| PartitionSnapshot {
                size: ProfileSize::ALL[i % 5],
                queued_work_ns: q,
                remaining_current_ns: r,
            })
            .collect();
        let d = elsa.place(batch, &table, &snaps);
        prop_assert!(d.partition() < snaps.len());
        // If the decision claims SLA feasibility, the slack really is positive.
        if d.is_within_sla() {
            let i = d.partition();
            let t_new = table.latency_ns(snaps[i].size, batch);
            prop_assert!(elsa.slack_ns(&snaps[i], t_new) > 0.0);
        }
    }

    #[test]
    fn slack_decreases_with_queue_depth(extra in 1u64..1_000_000_000) {
        let table = resnet_table();
        let elsa = Elsa::new(ElsaConfig::new(table.sla_target_ns(1.5)));
        let idle = PartitionSnapshot::idle(ProfileSize::G3);
        let busy = PartitionSnapshot {
            size: ProfileSize::G3,
            queued_work_ns: extra,
            remaining_current_ns: 0,
        };
        let t_new = table.latency_ns(ProfileSize::G3, 8);
        prop_assert!(elsa.slack_ns(&busy, t_new) < elsa.slack_ns(&idle, t_new));
    }

    // ---------- ELSA incremental placement state ----------

    #[test]
    fn elsa_incremental_state_matches_fresh_snapshots(
        partitions in prop::collection::vec(profile_size_strategy(), 1..6),
        ops in prop::collection::vec(
            (0u64..3, 0usize..8, 100_000u64..50_000_000),
            1..120
        ),
        batch in 1usize..=32
    ) {
        // Drives an arbitrary legal (work-conserving) sequence of
        // dispatch/complete events against the incremental ElsaState and a
        // plain per-partition mirror, checking after every step that (a)
        // the state's load accounting equals freshly-built snapshots and
        // (b) place_mut equals the pure reference place, tie-breaks
        // included.
        let table = resnet_table();
        let elsa = Elsa::new(ElsaConfig::new(table.sla_target_ns(1.5)));
        let n = partitions.len();
        let mut state = ElsaState::new(&partitions);
        // Mirror: (end_ns while executing, queued estimates).
        let mut current: Vec<Option<u64>> = vec![None; n];
        let mut queues: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut now = 0u64;

        for &(kind, target, est) in &ops {
            match kind {
                // A query with execution estimate `est` lands on `target`.
                0 | 1 => {
                    let p = target % n;
                    if current[p].is_none() {
                        current[p] = Some(now + est);
                        state.begin(p, now + est);
                    } else {
                        queues[p].push(est);
                        state.enqueue(p, est);
                    }
                }
                // The earliest-finishing partition completes.
                _ => {
                    let Some((p, end)) = current
                        .iter()
                        .enumerate()
                        .filter_map(|(p, c)| c.map(|end| (p, end)))
                        .min_by_key(|&(p, end)| (end, p))
                    else {
                        continue;
                    };
                    now = end;
                    current[p] = None;
                    state.finish(p);
                    if !queues[p].is_empty() {
                        let next_est = queues[p].remove(0);
                        state.dequeue(p, next_est);
                        current[p] = Some(now + next_est);
                        state.begin(p, now + next_est);
                    }
                }
            }

            // (a) Incremental load accounting == freshly-built snapshots.
            let fresh: Vec<PartitionSnapshot> = (0..n)
                .map(|p| PartitionSnapshot {
                    size: partitions[p],
                    queued_work_ns: queues[p].iter().sum(),
                    remaining_current_ns: current[p].map_or(0, |end| end - now),
                })
                .collect();
            prop_assert_eq!(&state.snapshots(now), &fresh);

            // (b) Fast placement == pure reference placement.
            let reference = elsa.place(batch, &table, &fresh);
            let fast = elsa.place_mut(batch, &table, &mut state, now);
            prop_assert_eq!(fast, reference);
        }
    }

    // ---------- Server fast path vs reference ----------

    #[test]
    fn server_fast_path_matches_reference(
        rate in 50f64..2_000.0,
        seed in 0u64..50,
        scheduler in 0u64..2
    ) {
        let table = resnet_table();
        let sla = table.sla_target_ns(1.5);
        let kind = if scheduler == 0 {
            SchedulerKind::Fifs
        } else {
            SchedulerKind::Elsa(ElsaConfig::new(sla))
        };
        let server = InferenceServer::new(
            vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G2, ProfileSize::G7],
            table,
            ServerConfig::new(kind),
        );
        let trace = TraceGenerator::new(rate, BatchDistribution::paper_default(), seed)
            .generate_for(0.2);
        let fast = server.run(&trace);
        let reference = server.run_reference(&trace);
        prop_assert_eq!(&fast.records, &reference.records);
        prop_assert_eq!(&fast.partition_utilization, &reference.partition_utilization);
        prop_assert_eq!(fast.makespan, reference.makespan);
        prop_assert!(
            fast.peak_pending_events <= server.partitions().len() + 2,
            "streamed queue must stay O(partitions), got {}",
            fast.peak_pending_events
        );
    }

    #[test]
    fn summary_reports_match_full_statistics(rate in 100f64..1_500.0, seed in 0u64..50) {
        let table = resnet_table();
        let sla = table.sla_target_ns(1.5);
        let server = InferenceServer::new(
            vec![ProfileSize::G2, ProfileSize::G3, ProfileSize::G7],
            table,
            ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(sla))),
        );
        let trace = TraceGenerator::new(rate, BatchDistribution::paper_default(), seed)
            .generate_for(0.2);
        let full = server.run_with_detail(&trace, ReportDetail::Full);
        let summary = server.run_with_detail(&trace, ReportDetail::Summary);
        prop_assert!(summary.records.is_empty());
        prop_assert_eq!(summary.completed(), full.completed());
        prop_assert_eq!(summary.makespan, full.makespan);
        prop_assert_eq!(summary.achieved_qps, full.achieved_qps);
        prop_assert_eq!(&summary.partition_utilization, &full.partition_utilization);
        if full.completed() > 0 {
            let exact = full.p95_ms();
            let approx = summary.p95_ms();
            prop_assert!(
                (approx / exact - 1.0).abs() < 0.016,
                "histogram p95 {} vs exact {}", approx, exact
            );
            // Violation-rate error is confined to the histogram bucket the
            // SLA falls in (≤ 1.6 % wide): every sample outside that band
            // is classified exactly.
            let boundary_mass = full
                .latency
                .samples_ns()
                .iter()
                .filter(|&&v| (v as f64 / sla as f64 - 1.0).abs() <= 0.016)
                .count() as f64
                / full.completed() as f64;
            prop_assert!(
                (summary.sla_violation_rate(sla) - full.sla_violation_rate(sla)).abs()
                    <= boundary_mass + 1e-9,
                "violation-rate error exceeds the boundary-bucket mass {}", boundary_mass
            );
        }
    }

    // ---------- Multi-model serving ----------

    #[test]
    fn multi_model_with_single_model_degenerates_to_single_path(
        rate in 50f64..1_500.0,
        seed in 0u64..50,
        scheduler in 0u64..2,
        partitions in prop::collection::vec(profile_size_strategy(), 1..6)
    ) {
        // The degeneration contract: a MultiModelServer hosting exactly
        // one model (no replan policy) must reproduce the single-model
        // fast path bit-for-bit — same records, same latency samples, same
        // utilization — so the multi-model dispatch layer provably adds
        // nothing to the PR-1 hot-path semantics.
        use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer};
        use paris_elsa::workload::TaggedQuerySpec;

        let table = resnet_table();
        let sla = table.sla_target_ns(1.5);
        let kind = if scheduler == 0 {
            SchedulerKind::Fifs
        } else {
            SchedulerKind::Elsa(ElsaConfig::new(sla))
        };
        let single = InferenceServer::new(
            partitions.clone(),
            table.clone(),
            ServerConfig::new(kind.clone()).with_sla_target(sla),
        );
        let dist = BatchDistribution::paper_default();
        let multi = MultiModelServer::with_groups(
            vec![ModelSpec::new("only", table, dist.clone())
                .with_scheduler(kind)
                .with_sla_ns(sla)],
            vec![partitions],
            GpcBudget::new(56, 8),
            MultiModelConfig::new(),
        );

        let trace = TraceGenerator::new(rate, dist, seed).generate_for(0.2);
        let tagged: Vec<TaggedQuerySpec> = trace
            .iter()
            .map(|&spec| TaggedQuerySpec { model: 0, spec })
            .collect();
        let expected = single.run(&trace);
        let got = multi.run(&tagged);

        prop_assert_eq!(&got.records, &expected.records);
        prop_assert_eq!(&got.latency, &expected.latency);
        prop_assert_eq!(&got.partition_utilization, &expected.partition_utilization);
        prop_assert_eq!(got.makespan, expected.makespan);
        prop_assert_eq!(got.achieved_qps, expected.achieved_qps);
        prop_assert_eq!(got.per_model[0].sla_violations, expected.sla_violations);
        prop_assert!(got.reconfigs.is_empty());
        prop_assert!(got.record_models.iter().all(|&m| m == 0));
    }

    #[test]
    fn one_shard_cluster_degenerates_to_multi_model_server(
        rate in 50f64..1_200.0,
        seed in 0u64..40,
        scheduler in 0u64..2,
        router in 0u64..3,
        partitions in prop::collection::vec(profile_size_strategy(), 1..6)
    ) {
        // The cluster degeneration contract: a Cluster hosting exactly one
        // shard (no loan policy) must reproduce the shard's own
        // MultiModelServer run bit-for-bit — same records, same latency
        // samples, same utilization — for every router policy, pinning the
        // cluster layer to the server semantics (which the multi-model
        // degeneration test in turn pins to the single-model fast path).
        use paris_elsa::cluster::{Cluster, RouterPolicy};
        use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer};
        use paris_elsa::workload::TaggedQuerySpec;

        let table = resnet_table();
        let sla = table.sla_target_ns(1.5);
        let kind = if scheduler == 0 {
            SchedulerKind::Fifs
        } else {
            SchedulerKind::Elsa(ElsaConfig::new(sla))
        };
        let dist = BatchDistribution::paper_default();
        let server = MultiModelServer::with_groups(
            vec![ModelSpec::new("only", table, dist.clone())
                .with_scheduler(kind)
                .with_sla_ns(sla)],
            vec![partitions],
            GpcBudget::new(56, 8),
            MultiModelConfig::new(),
        );
        let policy = match router {
            0 => RouterPolicy::StaticHash,
            1 => RouterPolicy::JoinShortestQueue,
            _ => RouterPolicy::WeightedByCapacity,
        };
        let cluster = Cluster::new(vec![server.clone()], policy);

        let trace = TraceGenerator::new(rate, dist, seed).generate_for(0.2);
        let tagged: Vec<TaggedQuerySpec> = trace
            .iter()
            .map(|&spec| TaggedQuerySpec { model: 0, spec })
            .collect();
        let expected = server.run(&tagged);
        let got = cluster.run(&tagged);

        prop_assert_eq!(got.per_shard.len(), 1);
        prop_assert_eq!(&got.routed, &vec![tagged.len() as u64]);
        let shard = &got.per_shard[0];
        prop_assert_eq!(&shard.records, &expected.records);
        prop_assert_eq!(&shard.latency, &expected.latency);
        prop_assert_eq!(&shard.partition_utilization, &expected.partition_utilization);
        prop_assert_eq!(shard.makespan, expected.makespan);
        prop_assert_eq!(shard.achieved_qps, expected.achieved_qps);
        prop_assert_eq!(
            shard.per_model[0].sla_violations,
            expected.per_model[0].sla_violations
        );
        prop_assert_eq!(got.completed(), expected.completed());
        prop_assert!(got.loans.is_empty());
        prop_assert_eq!(got.loaned_gpu_seconds, 0.0);
    }

    #[test]
    fn multi_model_replanning_conserves_queries(
        seed in 0u64..20,
        window_s in 0.1f64..0.4
    ) {
        // A mid-run re-plan must never drop or double-serve a query, for
        // any drift-window phasing relative to the traffic.
        use paris_elsa::dnn::ModelKind;
        use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer, ReplanPolicy};
        use paris_elsa::workload::{MultiTraceGenerator, PhaseSpec};

        let perf = PerfModel::new(DeviceSpec::a100());
        let dist = BatchDistribution::paper_default();
        let spec = |kind: ModelKind| {
            let t = ProfileTable::profile(&kind.build(), &perf, &ProfileSize::ALL, 32);
            ModelSpec::new(format!("{kind}"), t, dist.clone())
        };
        let server = MultiModelServer::new(
            vec![spec(ModelKind::MobileNet), spec(ModelKind::ResNet50)],
            GpcBudget::new(48, 8),
            MultiModelConfig::new().with_replan(ReplanPolicy::new(window_s)),
        )
        .unwrap();

        let small = BatchDistribution::log_normal_with_median(32, 0.9, 2.0);
        let large = BatchDistribution::log_normal_with_median(32, 0.9, 12.0);
        let trace = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.0, vec![(400.0, small.clone()), (40.0, small.clone())]),
                PhaseSpec::new(1.0, vec![(40.0, small), (250.0, large)]),
            ],
            seed,
        )
        .generate();
        let report = server.run(&trace);
        prop_assert_eq!(report.records.len(), trace.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.len());
        for r in &report.records {
            prop_assert!(r.arrival <= r.dispatched);
            prop_assert!(r.dispatched <= r.started);
            prop_assert!(r.started < r.completed);
        }
    }

    #[test]
    fn rolling_replanning_conserves_queries_at_every_step(
        seed in 0u64..20,
        window_s in 0.1f64..0.4
    ) {
        // The rolling-reconfiguration conservation contract: a re-plan
        // staged one GPU at a time must never drop or double-serve a
        // query at *any* step of the schedule, for any drift-window
        // phasing relative to the traffic — quiesced instances drain,
        // partially-rebuilt groups keep serving, stashed arrivals come
        // back once capacity returns.
        use paris_elsa::dnn::ModelKind;
        use paris_elsa::paris::ReconfigMode;
        use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer, ReplanPolicy};
        use paris_elsa::workload::{MultiTraceGenerator, PhaseSpec};

        let perf = PerfModel::new(DeviceSpec::a100());
        let dist = BatchDistribution::paper_default();
        let spec = |kind: ModelKind| {
            let t = ProfileTable::profile(&kind.build(), &perf, &ProfileSize::ALL, 32);
            ModelSpec::new(format!("{kind}"), t, dist.clone())
        };
        let server = MultiModelServer::new(
            vec![spec(ModelKind::MobileNet), spec(ModelKind::ResNet50)],
            GpcBudget::new(48, 8),
            MultiModelConfig::new()
                .with_replan(ReplanPolicy::new(window_s).with_mode(ReconfigMode::Rolling)),
        )
        .unwrap();

        let small = BatchDistribution::log_normal_with_median(32, 0.9, 2.0);
        let large = BatchDistribution::log_normal_with_median(32, 0.9, 12.0);
        let trace = MultiTraceGenerator::new(
            vec![
                PhaseSpec::new(1.0, vec![(400.0, small.clone()), (40.0, small.clone())]),
                PhaseSpec::new(1.0, vec![(40.0, small), (250.0, large)]),
            ],
            seed,
        )
        .generate();
        let report = server.run(&trace);
        prop_assert_eq!(report.records.len(), trace.len());
        let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), trace.len());
        for r in &report.records {
            prop_assert!(r.arrival <= r.dispatched);
            prop_assert!(r.dispatched <= r.started);
            prop_assert!(r.started < r.completed);
        }
        for rc in &report.reconfigs {
            prop_assert!(rc.steps >= 1);
            prop_assert!(rc.completed_at >= rc.triggered_at + rc.reslice_delay);
        }
    }

    // ---------- Metrics ----------

    #[test]
    fn percentiles_are_order_statistics(samples in prop::collection::vec(0u64..10_000_000, 1..300)) {
        let rec: LatencyRecorder = samples.iter().copied().collect();
        let p50 = rec.percentile_ns(0.5);
        let p95 = rec.percentile_ns(0.95);
        let p100 = rec.percentile_ns(1.0);
        prop_assert!(p50 <= p95 && p95 <= p100);
        prop_assert_eq!(p100, *samples.iter().max().unwrap());
        prop_assert!(samples.contains(&p95), "percentile must be an observed sample");
    }

    // ---------- Fault injection ----------

    #[test]
    fn fault_plans_never_drop_or_double_serve(
        seed in 0u64..24,
        mttf_s in 0.8f64..2.0,
        mttr_s in 0.15f64..0.5,
        shard_fail_s in 0.2f64..0.7,
        degrade_factor in 1.0f64..4.0,
        degrade_at in 0.1f64..0.6,
        margin in 0.3f64..1.5
    ) {
        // The graceful-degradation conservation contract (ARCHITECTURE.md
        // invariants 9 and 10): for ANY fault plan — sampled GPU outages
        // layered over a whole shard drain and a slow-GPU window, at any
        // phasing against the traffic, with brownout shedding active —
        // every offered query is EXACTLY served-or-shed: fail → drain/
        // requeue → re-plan never strands or double-serves, shedding never
        // double-counts, and premium (class 0) is never shed.
        use paris_elsa::cluster::{Cluster, RouterPolicy, ShedPolicy};
        use paris_elsa::dnn::ModelKind;
        use paris_elsa::faults::{run_with_faults, FaultPlan};
        use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer};
        use paris_elsa::workload::{MultiTraceGenerator, PhaseSpec};

        let perf = PerfModel::new(DeviceSpec::a100());
        let dist = BatchDistribution::paper_default();
        let table =
            ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
        let shard = |gpus: usize| {
            MultiModelServer::new(
                vec![
                    ModelSpec::new("premium", table.clone(), dist.clone()),
                    ModelSpec::new("batch", table.clone(), dist.clone()),
                ],
                GpcBudget::new(gpus * 7, gpus),
                MultiModelConfig::new(),
            )
            .unwrap()
        };
        let cluster = Cluster::new(vec![shard(2), shard(2)], RouterPolicy::JoinShortestQueue)
            .with_shed(ShedPolicy::new(vec![0, 1]).with_margin(margin));
        let rate = 0.3
            * cluster
                .shards()
                .iter()
                .map(MultiModelServer::capacity_hint_qps)
                .sum::<f64>();
        let trace = MultiTraceGenerator::new(
            vec![PhaseSpec::new(1.2, vec![(rate, dist.clone()), (rate, dist)])],
            seed,
        )
        .generate();
        let plan = FaultPlan::sample_gpu_mttf(&[2, 2], mttf_s, mttr_s, 1.2, seed)
            .with_shard_outage(1, shard_fail_s, 0.9)
            .with_gpu_degrade(0, 0, degrade_factor, degrade_at, degrade_at + 0.4);
        let report = run_with_faults(
            &cluster,
            trace.iter().copied().map(|tq| (None, tq)),
            paris_elsa::server::ReportDetail::Full,
            &plan,
        );
        let completed: u64 = report
            .cluster
            .per_shard
            .iter()
            .map(|r| r.records.len() as u64)
            .sum();
        prop_assert_eq!(
            completed + report.shed_total,
            trace.len() as u64,
            "offered must be exactly served + shed"
        );
        prop_assert_eq!(
            report.shed_total,
            report.cluster.shed_per_model.iter().sum::<u64>(),
            "shed aggregates must agree"
        );
        prop_assert_eq!(
            report.shed_per_class.first().copied().unwrap_or(0),
            0u64,
            "premium is never shed"
        );
        for shard_report in &report.cluster.per_shard {
            let mut ids: Vec<u64> = shard_report.records.iter().map(|r| r.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), shard_report.records.len(), "double-served");
            for r in &shard_report.records {
                prop_assert!(r.arrival <= r.dispatched);
                prop_assert!(r.dispatched <= r.started);
                prop_assert!(r.started < r.completed);
            }
        }
        prop_assert!(report.base_availability <= 1.0);
        prop_assert!(report.effective_availability <= 1.0);
    }

    #[test]
    fn correlated_domain_outages_conserve_queries(
        seed in 0u64..20,
        mttf_s in 1.0f64..2.5,
        mttr_s in 0.2f64..0.5,
        gpus_per_rack in 1usize..=3
    ) {
        // Correlated (rack-level) failures are just simultaneous per-GPU
        // events: whatever windows the domain sampler draws, and however
        // many GPUs die together, conservation holds and availability
        // stays a valid fraction.
        use paris_elsa::cluster::{Cluster, RouterPolicy};
        use paris_elsa::dnn::ModelKind;
        use paris_elsa::faults::{run_with_faults, FaultPlan, FaultTopology};
        use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer};
        use paris_elsa::workload::{MultiTraceGenerator, PhaseSpec};

        let perf = PerfModel::new(DeviceSpec::a100());
        let dist = BatchDistribution::paper_default();
        let table =
            ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
        let shard = |gpus: usize| {
            MultiModelServer::new(
                vec![ModelSpec::new("m", table.clone(), dist.clone())],
                GpcBudget::new(gpus * 7, gpus),
                MultiModelConfig::new(),
            )
            .unwrap()
        };
        let shard_gpus = [2usize, 2];
        let cluster = Cluster::new(vec![shard(2), shard(2)], RouterPolicy::JoinShortestQueue);
        let rate = 0.5
            * cluster
                .shards()
                .iter()
                .map(MultiModelServer::capacity_hint_qps)
                .sum::<f64>();
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(1.2, vec![(rate, dist)])], seed)
                .generate();
        let topo = FaultTopology::racks(&shard_gpus, gpus_per_rack);
        let plan = FaultPlan::sample_domain_mttf(&topo, mttf_s, mttr_s, 1.2, seed);
        let report = run_with_faults(
            &cluster,
            trace.iter().copied().map(|tq| (None, tq)),
            paris_elsa::server::ReportDetail::Full,
            &plan,
        );
        let completed: usize = report
            .cluster
            .per_shard
            .iter()
            .map(|r| r.records.len())
            .sum();
        prop_assert_eq!(completed, trace.len(), "dropped or invented a query");
        for shard_report in &report.cluster.per_shard {
            let mut ids: Vec<u64> = shard_report.records.iter().map(|r| r.id.0).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), shard_report.records.len(), "double-served");
        }
        prop_assert!((0.0..=1.0).contains(&report.base_availability));
        prop_assert!((0.0..=1.0).contains(&report.effective_availability));
    }

    #[test]
    fn unit_factor_degrades_are_bit_for_bit_the_fault_free_run(
        seed in 0u64..20,
        degrade_at in 0.05f64..0.5,
        width in 0.1f64..0.6,
        gpu in 0usize..2
    ) {
        // The degenerate-degrade contract: a degrade/restore cycle with
        // factor exactly 1.0 — at any phasing, on any GPU — leaves no
        // trace beyond the fault log. Records, histograms, makespan and
        // reconfiguration history are bit-identical to the fault-free run.
        use paris_elsa::cluster::{Cluster, RouterPolicy};
        use paris_elsa::dnn::ModelKind;
        use paris_elsa::faults::{run_with_faults, FaultPlan};
        use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer};
        use paris_elsa::workload::{MultiTraceGenerator, PhaseSpec};

        let perf = PerfModel::new(DeviceSpec::a100());
        let dist = BatchDistribution::paper_default();
        let table =
            ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
        let server = MultiModelServer::new(
            vec![ModelSpec::new("m", table, dist.clone())],
            GpcBudget::new(14, 2),
            MultiModelConfig::new(),
        )
        .unwrap();
        let rate = 0.7 * server.capacity_hint_qps();
        let cluster = Cluster::new(vec![server], RouterPolicy::JoinShortestQueue);
        let trace =
            MultiTraceGenerator::new(vec![PhaseSpec::new(1.0, vec![(rate, dist)])], seed)
                .generate();
        let run = |plan: &FaultPlan| {
            run_with_faults(
                &cluster,
                trace.iter().copied().map(|tq| (None, tq)),
                paris_elsa::server::ReportDetail::Full,
                plan,
            )
        };
        let plain = run(&FaultPlan::new());
        let unit = run(
            &FaultPlan::new().with_gpu_degrade(0, gpu, 1.0, degrade_at, degrade_at + width),
        );
        prop_assert_eq!(unit.cluster.faults.len(), 2, "degrade + restore logged");
        prop_assert_eq!(&unit.cluster.routed, &plain.cluster.routed);
        prop_assert_eq!(unit.cluster.makespan, plain.cluster.makespan);
        for (a, b) in unit.cluster.per_shard.iter().zip(&plain.cluster.per_shard) {
            prop_assert_eq!(&a.records, &b.records);
            prop_assert_eq!(&a.latency, &b.latency);
            prop_assert_eq!(a.makespan, b.makespan);
            prop_assert_eq!(&a.reconfigs, &b.reconfigs);
        }
    }

    // ---------- Shard-parallel determinism ----------

    #[test]
    fn parallel_cluster_is_bit_identical_to_sequential(
        seed in 0u64..12,
        router in 0u64..3,
        loan_kind in 0u64..3,
        mode in 0u64..2,
        mttf_s in 0.9f64..2.0,
        mttr_s in 0.15f64..0.4,
        degrade_factor in 1.0f64..4.0
    ) {
        // The shard-parallel determinism contract (ARCHITECTURE.md
        // invariant 11): for ANY router policy, loan policy, sampled
        // fault plan and sync-window mode, running the cluster on 2, 4 or
        // 8 lane worker threads produces a report byte-identical to the
        // single-thread run — compared on the full `Debug` rendering, so
        // every record, histogram bucket, float, loan ledger entry and
        // fault-log line must agree, not just aggregate counts.
        use paris_elsa::cluster::{
            Cluster, LoanDemandModel, LoanPolicy, RouterPolicy, ShedPolicy, SyncWindow,
        };
        use paris_elsa::dnn::ModelKind;
        use paris_elsa::faults::FaultPlan;
        use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer};
        use paris_elsa::workload::{MultiTraceGenerator, PhaseSpec};

        let perf = PerfModel::new(DeviceSpec::a100());
        let dist = BatchDistribution::paper_default();
        let table =
            ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32);
        let shard = |gpus: usize| {
            MultiModelServer::new(
                vec![
                    ModelSpec::new("premium", table.clone(), dist.clone()),
                    ModelSpec::new("batch", table.clone(), dist.clone()),
                ],
                GpcBudget::new(gpus * 7, gpus),
                MultiModelConfig::new(),
            )
            .unwrap()
        };
        let policy = match router {
            0 => RouterPolicy::StaticHash,
            1 => RouterPolicy::JoinShortestQueue,
            _ => RouterPolicy::WeightedByCapacity,
        };
        let mut cluster = Cluster::new(vec![shard(2), shard(2), shard(2)], policy)
            .with_shed(ShedPolicy::new(vec![0, 1]).with_margin(0.8));
        if loan_kind > 0 {
            let model = if loan_kind == 1 {
                LoanDemandModel::PlannedEfficiency
            } else {
                LoanDemandModel::MeasuredBusy
            };
            cluster = cluster.with_loan(LoanPolicy::new(2, 0.15).with_demand_model(model));
        }
        let rate = 0.45
            * cluster
                .shards()
                .iter()
                .map(MultiModelServer::capacity_hint_qps)
                .sum::<f64>();
        let trace = MultiTraceGenerator::new(
            vec![PhaseSpec::new(0.7, vec![(rate, dist.clone()), (rate, dist)])],
            seed,
        )
        .generate();
        let timeline = FaultPlan::sample_gpu_mttf(&[2, 2, 2], mttf_s, mttr_s, 0.7, seed)
            .with_gpu_degrade(1, 0, degrade_factor, 0.1, 0.45)
            .compile();
        let window = if mode == 0 {
            SyncWindow::PerEvent
        } else {
            SyncWindow::Lookahead(SimDuration::from_nanos(2_000_000))
        };
        let run = |threads: usize| {
            cluster.run_windowed(
                trace.iter().copied().map(|tq| (None, tq)),
                ReportDetail::Full,
                &timeline,
                window,
                threads,
            )
        };
        let reference = format!("{:?}", run(1));
        for threads in [2usize, 4, 8] {
            let got = format!("{:?}", run(threads));
            prop_assert_eq!(
                &got,
                &reference,
                "report diverged at {} threads ({:?})",
                threads,
                window
            );
        }
    }

    // ---------- Server end-to-end ----------

    #[test]
    fn server_conserves_queries_and_orders_lifecycles(
        rate in 50f64..2_000.0,
        seed in 0u64..100
    ) {
        let table = resnet_table();
        let sla = table.sla_target_ns(1.5);
        let server = InferenceServer::new(
            vec![ProfileSize::G1, ProfileSize::G2, ProfileSize::G3, ProfileSize::G7],
            table,
            ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(sla))),
        );
        let trace = TraceGenerator::new(rate, BatchDistribution::paper_default(), seed)
            .generate_for(0.2);
        let report = server.run(&trace);
        prop_assert_eq!(report.records.len(), trace.len());
        for r in &report.records {
            prop_assert!(r.arrival <= r.dispatched);
            prop_assert!(r.dispatched <= r.started);
            prop_assert!(r.started < r.completed);
        }
        for &u in &report.partition_utilization {
            prop_assert!((0.0..=1.0).contains(&u));
        }
    }
}
