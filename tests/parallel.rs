//! Cross-shard conservation at the synchronization boundary.
//!
//! The shard-parallel engine exchanges router decisions, loan transfers,
//! shed verdicts and fault events between lanes only at conservative
//! window edges (ARCHITECTURE.md invariant 11). These tests aim fault and
//! loan traffic *exactly at* `SyncWindow::Lookahead` edges — the worst
//! case for an off-by-one in the `cmd_stamp <= event_stamp` merge rule —
//! and check that the conservation contracts (invariants 9 and 10) still
//! hold on both sides of the boundary, at every thread count.

use paris_elsa::cluster::{
    Cluster, ClusterReport, FaultTimeline, LoanDemandModel, LoanPolicy, RouterPolicy, ShedPolicy,
    SyncWindow,
};
use paris_elsa::dnn::ModelKind;
use paris_elsa::gpu::{DeviceSpec, PerfModel, ProfileSize};
use paris_elsa::paris::{GpcBudget, ProfileTable};
use paris_elsa::prelude::*;
use paris_elsa::server::{ModelSpec, MultiModelConfig, MultiModelServer, ReportDetail};
use paris_elsa::workload::{
    BatchDistribution, DriftDetectorConfig, MultiTraceGenerator, PhaseSpec, TaggedQuerySpec,
};

/// One conservative window, in nanoseconds. Fault instants in these
/// tests are exact multiples of this, so every injected event lands
/// precisely on a Lookahead window edge.
const WINDOW_NS: u64 = 1_000_000;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn mobilenet_table() -> ProfileTable {
    let perf = PerfModel::new(DeviceSpec::a100());
    ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32)
}

fn shard(table: &ProfileTable, dist: &BatchDistribution, gpus: usize) -> MultiModelServer {
    MultiModelServer::new(
        vec![
            ModelSpec::new("premium", table.clone(), dist.clone()),
            ModelSpec::new("batch", table.clone(), dist.clone()),
        ],
        GpcBudget::new(gpus * 7, gpus),
        MultiModelConfig::new(),
    )
    .unwrap()
}

fn solo_shard(table: &ProfileTable, dist: &BatchDistribution, gpus: usize) -> MultiModelServer {
    MultiModelServer::new(
        vec![ModelSpec::new("m", table.clone(), dist.clone())],
        GpcBudget::new(gpus * 7, gpus),
        MultiModelConfig::new(),
    )
    .unwrap()
}

fn trace_for(cluster: &Cluster, load: f64, secs: f64, seed: u64) -> Vec<TaggedQuerySpec> {
    let dist = BatchDistribution::paper_default();
    let rate = load
        * cluster
            .shards()
            .iter()
            .map(MultiModelServer::capacity_hint_qps)
            .sum::<f64>();
    MultiTraceGenerator::new(
        vec![PhaseSpec::new(
            secs,
            vec![(rate, dist.clone()), (rate, dist)],
        )],
        seed,
    )
    .generate()
}

/// A calm phase (to form the drift detector's baseline) followed by a
/// surge — the rate step is what makes the loan controller wake up.
fn surge_trace(
    cluster: &Cluster,
    calm_load: f64,
    surge_load: f64,
    n_models: usize,
    seed: u64,
) -> Vec<TaggedQuerySpec> {
    let dist = BatchDistribution::paper_default();
    let fleet = cluster
        .shards()
        .iter()
        .map(MultiModelServer::capacity_hint_qps)
        .sum::<f64>();
    let calm = calm_load * fleet / n_models as f64;
    let surge = surge_load * fleet / n_models as f64;
    let mix = |rate: f64| vec![(rate, dist.clone()); n_models];
    MultiTraceGenerator::new(
        vec![
            PhaseSpec::new(0.5, mix(calm)),
            PhaseSpec::new(0.8, mix(surge)),
        ],
        seed,
    )
    .generate()
}

/// Served-or-shed exactness plus per-shard id uniqueness and lifecycle
/// ordering — invariants 9/10, checked from the outside.
fn assert_conserved(report: &ClusterReport, offered: usize) {
    let completed: u64 = report
        .per_shard
        .iter()
        .map(|r| r.records.len() as u64)
        .sum();
    let shed: u64 = report.shed_per_model.iter().sum();
    assert_eq!(
        completed + shed,
        offered as u64,
        "offered must be exactly served + shed"
    );
    for shard_report in &report.per_shard {
        let mut ids: Vec<u64> = shard_report.records.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            shard_report.records.len(),
            "a query was double-served"
        );
        for r in &shard_report.records {
            assert!(r.arrival <= r.dispatched);
            assert!(r.dispatched <= r.started);
            assert!(r.started < r.completed);
        }
    }
}

/// Replays the loan ledger event-by-event: the pool balance implied by
/// the deltas must match every event's `pool_free_after`, never go
/// negative, never exceed the pool, and no shard may return GPUs it does
/// not hold.
fn assert_pool_conserved(report: &ClusterReport, pool_gpus: usize, shards: usize) {
    let mut pool = pool_gpus as i64;
    let mut held = vec![0i64; shards];
    for ev in &report.loans {
        pool -= ev.gpus_delta;
        held[ev.shard] += ev.gpus_delta;
        assert_eq!(
            pool, ev.pool_free_after as i64,
            "ledger balance diverged at {:?}",
            ev.at
        );
        assert!(
            (0..=pool_gpus as i64).contains(&pool),
            "pool over-committed"
        );
        assert!(
            held[ev.shard] >= 0,
            "shard {} returned unheld GPUs",
            ev.shard
        );
    }
}

fn run_all_threads(
    cluster: &Cluster,
    trace: &[TaggedQuerySpec],
    timeline: &FaultTimeline,
    window: SyncWindow,
) -> ClusterReport {
    let run = |threads: usize| {
        cluster.run_windowed(
            trace.iter().copied().map(|tq| (None, tq)),
            ReportDetail::Full,
            timeline,
            window,
            threads,
        )
    };
    let reference = run(THREADS[0]);
    let want = format!("{reference:?}");
    for &threads in &THREADS[1..] {
        let got = format!("{:?}", run(threads));
        assert_eq!(
            got, want,
            "report diverged at {threads} threads ({window:?})"
        );
    }
    reference
}

#[test]
fn faults_landing_exactly_on_window_edges_conserve_queries() {
    let table = mobilenet_table();
    let dist = BatchDistribution::paper_default();
    let cluster = Cluster::new(
        vec![
            shard(&table, &dist, 2),
            shard(&table, &dist, 2),
            shard(&table, &dist, 2),
        ],
        RouterPolicy::JoinShortestQueue,
    )
    .with_shed(ShedPolicy::new(vec![0, 1]).with_margin(0.8));
    let trace = trace_for(&cluster, 0.6, 0.8, 11);

    // Every instant is an exact multiple of WINDOW_NS: the kill, the
    // whole-shard drain, both repairs and the degrade window all fire on
    // the leading edge of a Lookahead window, where a lane's local events
    // at the same instant race the mailboxed command for merge order.
    let edge = |k: u64| SimTime::from_nanos(k * WINDOW_NS);
    let timeline = FaultTimeline::new(vec![
        (edge(150), FaultEvent::GpuFail { shard: 0, gpu: 0 }),
        (
            edge(200),
            FaultEvent::GpuDegrade {
                shard: 2,
                gpu: 1,
                factor_milli: 2_500,
            },
        ),
        (edge(250), FaultEvent::ShardFail { shard: 1 }),
        (edge(400), FaultEvent::GpuRepair { shard: 0, gpu: 0 }),
        (edge(450), FaultEvent::ShardRepair { shard: 1 }),
        (edge(500), FaultEvent::GpuRestore { shard: 2, gpu: 1 }),
    ]);

    for window in [
        SyncWindow::Lookahead(SimDuration::from_nanos(WINDOW_NS)),
        SyncWindow::PerEvent,
    ] {
        let report = run_all_threads(&cluster, &trace, &timeline, window);
        assert_eq!(report.faults.len(), 6, "all six fault events logged");
        assert_conserved(&report, trace.len());
        let requeued: u64 = report.faults.iter().map(|f| f.requeued).sum();
        let served: u64 = report
            .per_shard
            .iter()
            .map(|r| r.records.len() as u64)
            .sum();
        assert!(
            served + report.shed_per_model.iter().sum::<u64>() >= requeued,
            "requeued queries must re-enter the served/shed population"
        );
    }
}

#[test]
fn loan_transfer_across_the_sync_boundary_conserves_pool_and_queries() {
    let table = mobilenet_table();
    let dist = BatchDistribution::paper_default();
    const POOL: usize = 2;
    let cluster = Cluster::new(
        vec![
            shard(&table, &dist, 2),
            shard(&table, &dist, 2),
            shard(&table, &dist, 2),
            shard(&table, &dist, 2),
        ],
        RouterPolicy::JoinShortestQueue,
    )
    .with_loan(
        LoanPolicy::new(POOL, 0.1)
            .with_thresholds(0.6, 0.2)
            .with_demand_model(LoanDemandModel::PlannedEfficiency)
            .with_detector(DriftDetectorConfig::new(0.1).with_min_observations(20)),
    );
    let base = surge_trace(&cluster, 0.4, 1.6, 2, 23);
    // Pin three of every four arrivals to shard 0 so it runs far past its
    // own capacity while the rest idle: the loan controller must move
    // pool GPUs to shard 0 mid-run, and the transfer command crosses the
    // sync boundary into shard 0's lane.
    let pinned: Vec<(Option<usize>, TaggedQuerySpec)> = base
        .iter()
        .enumerate()
        .map(|(i, &tq)| (if i % 4 != 3 { Some(0) } else { None }, tq))
        .collect();

    for window in [
        SyncWindow::Lookahead(SimDuration::from_nanos(WINDOW_NS)),
        SyncWindow::PerEvent,
    ] {
        let run = |threads: usize| {
            cluster.run_windowed(
                pinned.iter().copied(),
                ReportDetail::Full,
                &FaultTimeline::empty(),
                window,
                threads,
            )
        };
        let reference = run(1);
        let want = format!("{reference:?}");
        for &threads in &THREADS[1..] {
            assert_eq!(
                format!("{:?}", run(threads)),
                want,
                "loan run diverged at {threads} threads ({window:?})"
            );
        }
        assert!(
            !reference.loans.is_empty(),
            "the skewed load must trigger at least one loan transfer"
        );
        assert_conserved(&reference, pinned.len());
        assert_pool_conserved(&reference, POOL, cluster.shards().len());
        assert!(reference.loaned_gpu_seconds > 0.0);
    }
}

#[test]
fn loan_storm_many_shards_one_pool_stays_deterministic() {
    let table = mobilenet_table();
    let dist = BatchDistribution::paper_default();
    const POOL: usize = 1;
    // Eight single-GPU shards all overloaded at once, one lendable GPU:
    // every loan decision window has more claimants than supply, so the
    // winner is decided purely by the deterministic `(time, key)` order —
    // any thread-arrival leak shows up as a different winner.
    let shards: Vec<MultiModelServer> = (0..8).map(|_| solo_shard(&table, &dist, 1)).collect();
    let cluster = Cluster::new(shards, RouterPolicy::JoinShortestQueue).with_loan(
        LoanPolicy::new(POOL, 0.1)
            .with_thresholds(0.5, 0.1)
            .with_demand_model(LoanDemandModel::MeasuredBusy)
            .with_detector(DriftDetectorConfig::new(0.1).with_min_observations(20)),
    );
    let trace = surge_trace(&cluster, 0.4, 1.8, 1, 37);

    for window in [
        SyncWindow::Lookahead(SimDuration::from_nanos(WINDOW_NS)),
        SyncWindow::PerEvent,
    ] {
        let report = run_all_threads(&cluster, &trace, &FaultTimeline::empty(), window);
        assert!(
            !report.loans.is_empty(),
            "the storm must produce loan traffic"
        );
        assert_conserved(&report, trace.len());
        assert_pool_conserved(&report, POOL, cluster.shards().len());
    }
}

#[test]
fn shard_fail_during_borrow_returns_the_loan_and_serves_everything() {
    let table = mobilenet_table();
    let dist = BatchDistribution::paper_default();
    const POOL: usize = 2;
    let cluster = Cluster::new(
        vec![
            shard(&table, &dist, 2),
            shard(&table, &dist, 2),
            shard(&table, &dist, 2),
        ],
        RouterPolicy::JoinShortestQueue,
    )
    .with_loan(
        LoanPolicy::new(POOL, 0.1)
            .with_thresholds(0.6, 0.2)
            .with_demand_model(LoanDemandModel::PlannedEfficiency)
            .with_detector(DriftDetectorConfig::new(0.1).with_min_observations(20)),
    );
    let base = surge_trace(&cluster, 0.4, 1.6, 2, 51);
    let pinned: Vec<(Option<usize>, TaggedQuerySpec)> = base
        .iter()
        .enumerate()
        .map(|(i, &tq)| (if i % 3 != 2 { Some(0) } else { None }, tq))
        .collect();
    // Kill the borrower exactly on a window edge mid-run, repair it on a
    // later edge: the drain, the loan return forced by the fail and the
    // re-borrow after repair all cross the sync boundary.
    let edge = |k: u64| SimTime::from_nanos(k * WINDOW_NS);
    let timeline = FaultTimeline::new(vec![
        (edge(800), FaultEvent::ShardFail { shard: 0 }),
        (edge(1000), FaultEvent::ShardRepair { shard: 0 }),
    ]);

    for window in [
        SyncWindow::Lookahead(SimDuration::from_nanos(WINDOW_NS)),
        SyncWindow::PerEvent,
    ] {
        let run = |threads: usize| {
            cluster.run_windowed(
                pinned.iter().copied(),
                ReportDetail::Full,
                &timeline,
                window,
                threads,
            )
        };
        let reference = run(1);
        let want = format!("{reference:?}");
        for &threads in &THREADS[1..] {
            assert_eq!(
                format!("{:?}", run(threads)),
                want,
                "fail-during-borrow diverged at {threads} threads ({window:?})"
            );
        }
        assert_conserved(&reference, pinned.len());
        assert_pool_conserved(&reference, POOL, cluster.shards().len());
        assert_eq!(reference.faults.len(), 2);
    }
}

/// Lane pre-sizing from the trace profile must cover the whole run: a
/// cluster built with `with_lane_capacity` sizes every lane's event queue
/// (and coordinator mailbox) up front, so no lane's DES high-water mark may
/// exceed its hint — i.e. the hot loop never grows a heap mid-run. The
/// hints come from `lane_capacity_hints`, pinned here so a formula
/// regression (hint below actual peak) fails loudly.
#[test]
fn lane_capacity_hints_cover_peak_pending() {
    let table = mobilenet_table();
    let dist = BatchDistribution::paper_default();
    let cluster = Cluster::new(
        vec![
            shard(&table, &dist, 2),
            shard(&table, &dist, 2),
            shard(&table, &dist, 3),
            shard(&table, &dist, 2),
        ],
        RouterPolicy::JoinShortestQueue,
    );
    let offered_qps = 0.9
        * cluster
            .shards()
            .iter()
            .map(MultiModelServer::capacity_hint_qps)
            .sum::<f64>();
    let hints = cluster.lane_capacity_hints(offered_qps);
    assert_eq!(hints.len(), cluster.shards().len());
    let cluster = cluster.with_lane_capacity(offered_qps);
    let trace = trace_for(&cluster, 0.9, 0.4, 23);
    for window in [
        SyncWindow::Lookahead(SimDuration::from_nanos(WINDOW_NS)),
        SyncWindow::PerEvent,
    ] {
        let report = cluster.run_windowed(
            trace.iter().copied().map(|tq| (None, tq)),
            ReportDetail::Summary,
            &FaultTimeline::default(),
            window,
            1,
        );
        for (s, shard_report) in report.per_shard.iter().enumerate() {
            assert!(
                shard_report.peak_pending_events <= hints[s],
                "lane {s} peaked at {} pending events, above its pre-size hint {} ({window:?})",
                shard_report.peak_pending_events,
                hints[s]
            );
        }
    }
}
