//! End-to-end integration tests spanning every crate: profiling → PARIS →
//! ELSA → simulated server → metrics, checking the paper's headline
//! behaviours on the real pipeline.

use paris_elsa::dnn::ModelKind;
use paris_elsa::prelude::*;
use paris_elsa::server::{capacity_hint_qps, measure_point};

fn quick_sweep(bed: &Testbed) -> SweepConfig {
    SweepConfig::new(0.5, 1234, bed.sla_ns())
}

fn lbt(bed: &Testbed, design: DesignPoint) -> f64 {
    bed.latency_bounded_qps(design, &quick_sweep(bed))
        .expect("plan builds")
}

#[test]
fn paris_elsa_beats_or_matches_every_baseline_on_every_model() {
    // The Figure 12 headline: PARIS+ELSA leads all eight designs. On the
    // kernel-floor-bound Conformer, the all-small homogeneous server is a
    // statistical tie (PARIS trades a few instances for tail robustness) —
    // see EXPERIMENTS.md — so that one row gets a looser tolerance.
    for model in ModelKind::ALL {
        let bed = Testbed::paper_default(model);
        let champion = lbt(&bed, DesignPoint::ParisElsa);
        let tolerance = if model == ModelKind::Conformer {
            0.85
        } else {
            0.95
        };
        for design in [
            DesignPoint::HomogeneousFifs(ProfileSize::G1),
            DesignPoint::HomogeneousFifs(ProfileSize::G2),
            DesignPoint::HomogeneousFifs(ProfileSize::G3),
            DesignPoint::HomogeneousFifs(ProfileSize::G7),
            DesignPoint::RandomFifs { seed: 9 },
            DesignPoint::RandomElsa { seed: 9 },
            DesignPoint::ParisFifs,
        ] {
            let qps = lbt(&bed, design);
            assert!(
                champion >= tolerance * qps,
                "{model}: {design} ({qps:.0} q/s) beats PARIS+ELSA ({champion:.0} q/s)"
            );
        }
    }
}

#[test]
fn elsa_never_hurts_a_paris_plan() {
    for model in [
        ModelKind::MobileNet,
        ModelKind::ResNet50,
        ModelKind::BertBase,
    ] {
        let bed = Testbed::paper_default(model);
        let fifs = lbt(&bed, DesignPoint::ParisFifs);
        let elsa = lbt(&bed, DesignPoint::ParisElsa);
        assert!(
            elsa >= fifs * 0.99,
            "{model}: ELSA {elsa:.0} q/s under FIFS {fifs:.0} q/s"
        );
    }
}

#[test]
fn elsa_rescues_heavy_models_from_heterogeneity_hazards() {
    // §VI-B: heterogeneous partitions + FIFS mis-place large batches; ELSA
    // is what makes heterogeneity safe (Random+ELSA ≥ Random+FIFS).
    for model in [ModelKind::ResNet50, ModelKind::BertBase] {
        let bed = Testbed::paper_default(model);
        let fifs = lbt(&bed, DesignPoint::RandomFifs { seed: 3 });
        let elsa = lbt(&bed, DesignPoint::RandomElsa { seed: 3 });
        assert!(
            elsa > fifs,
            "{model}: Random+ELSA {elsa:.0} !> Random+FIFS {fifs:.0}"
        );
    }
}

#[test]
fn small_homogeneous_partitions_collapse_for_compute_heavy_models() {
    // §VI-B: GPU(1)/GPU(2) cannot satisfy BERT's SLA.
    let bed = Testbed::paper_default(ModelKind::BertBase);
    let g1 = lbt(&bed, DesignPoint::HomogeneousFifs(ProfileSize::G1));
    let g7 = lbt(&bed, DesignPoint::HomogeneousFifs(ProfileSize::G7));
    assert!(g7 > 0.0);
    assert!(
        g1 < 0.25 * g7,
        "BERT on GPU(1) should collapse: {g1:.0} vs GPU(7) {g7:.0}"
    );
}

#[test]
fn small_homogeneous_partitions_shine_for_light_models() {
    // §III: lightweight models love small partitions.
    let bed = Testbed::paper_default(ModelKind::ShuffleNet);
    let g1 = lbt(&bed, DesignPoint::HomogeneousFifs(ProfileSize::G1));
    let g7 = lbt(&bed, DesignPoint::HomogeneousFifs(ProfileSize::G7));
    assert!(
        g1 > 3.0 * g7,
        "ShuffleNet GPU(1) {g1:.0} should dwarf GPU(7) {g7:.0}"
    );
}

#[test]
fn paris_plans_match_model_compute_intensity() {
    let light = Testbed::paper_default(ModelKind::MobileNet)
        .plan(DesignPoint::ParisElsa)
        .unwrap();
    let heavy = Testbed::paper_default(ModelKind::BertBase)
        .plan(DesignPoint::ParisElsa)
        .unwrap();
    let avg_gpcs = |p: &PartitionPlan| p.total_gpcs_used() as f64 / p.instance_count() as f64;
    assert!(
        avg_gpcs(&light) < avg_gpcs(&heavy),
        "MobileNet plan must lean smaller than BERT's"
    );
    assert!(
        heavy.count(ProfileSize::G7) >= 1,
        "BERT needs big partitions"
    );
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let bed = Testbed::paper_default(ModelKind::Conformer);
        let server = bed.server(DesignPoint::ParisElsa).unwrap();
        let trace = TraceGenerator::new(300.0, bed.distribution().clone(), 77).generate_for(1.0);
        let report = server.run(&trace);
        (
            report.records.len(),
            report.latency.percentile_ns(0.95),
            report.partition_utilization.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn conservation_no_query_lost_or_duplicated_under_overload() {
    let bed = Testbed::paper_default(ModelKind::BertBase);
    let server = bed.server(DesignPoint::ParisElsa).unwrap();
    // 5× the capacity hint: deep overload.
    let rate = capacity_hint_qps(&server, bed.distribution()) * 5.0;
    let trace = TraceGenerator::new(rate, bed.distribution().clone(), 5).generate_for(0.5);
    let report = server.run(&trace);
    assert_eq!(report.records.len(), trace.len());
    let mut ids: Vec<u64> = report.records.iter().map(|r| r.id.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), trace.len());
}

#[test]
fn paris_extracts_more_throughput_per_gpc_than_gpu7() {
    // The TCO argument: at the SLA, PARIS-configured silicon serves more
    // queries per GPC than the monolithic GPU(7) server.
    for model in [
        ModelKind::MobileNet,
        ModelKind::ResNet50,
        ModelKind::BertBase,
    ] {
        let bed = Testbed::paper_default(model);
        let paris_qps = lbt(&bed, DesignPoint::ParisElsa);
        let gpu7_qps = lbt(&bed, DesignPoint::HomogeneousFifs(ProfileSize::G7));
        let paris_gpcs = bed.budget_for(DesignPoint::ParisElsa).total_gpcs as f64;
        let gpu7_gpcs = bed
            .budget_for(DesignPoint::HomogeneousFifs(ProfileSize::G7))
            .total_gpcs as f64;
        assert!(
            paris_qps / paris_gpcs > gpu7_qps / gpu7_gpcs,
            "{model}: PARIS {:.1} q/s/GPC !> GPU(7) {:.1} q/s/GPC",
            paris_qps / paris_gpcs,
            gpu7_qps / gpu7_gpcs
        );
    }
}

#[test]
fn sla_violations_vanish_below_capacity_with_elsa() {
    let bed = Testbed::paper_default(ModelKind::ResNet50);
    let sweep = quick_sweep(&bed);
    let server = bed.server(DesignPoint::ParisElsa).unwrap();
    let qps = lbt(&bed, DesignPoint::ParisElsa);
    let p = measure_point(&server, bed.distribution(), qps * 0.5, &sweep);
    assert!(
        p.sla_violation_rate < 0.05,
        "at half capacity violations should be rare: {:.1}%",
        p.sla_violation_rate * 100.0
    );
}

#[test]
fn looser_sla_increases_every_designs_throughput() {
    let tight = Testbed::paper_default(ModelKind::ResNet50);
    let loose = Testbed::paper_default(ModelKind::ResNet50).with_sla_multiplier(2.5);
    for design in [
        DesignPoint::HomogeneousFifs(ProfileSize::G7),
        DesignPoint::ParisElsa,
    ] {
        let a = lbt(&tight, design);
        let b = lbt(&loose, design);
        assert!(
            b >= a * 0.99,
            "{design}: loosening SLA reduced throughput {a:.0} → {b:.0}"
        );
    }
}

#[test]
fn service_noise_degrades_gracefully() {
    // ELSA's estimates assume deterministic DNN latency (§IV-C); mild noise
    // must not break conservation or blow p95 up catastrophically.
    let bed = Testbed::paper_default(ModelKind::ResNet50);
    let plan = bed.plan(DesignPoint::ParisElsa).unwrap();
    let noisy = InferenceServer::from_plan(
        &plan,
        bed.table().clone(),
        ServerConfig::new(SchedulerKind::Elsa(ElsaConfig::new(bed.sla_ns())))
            .with_service_noise(0.1, 42),
    );
    let trace = TraceGenerator::new(500.0, bed.distribution().clone(), 8).generate_for(1.0);
    let report = noisy.run(&trace);
    assert_eq!(report.records.len(), trace.len());
    assert!(report.p95_ms() < 3.0 * bed.sla_ns() as f64 / 1e6);
}

#[test]
fn table1_homogeneous_instance_counts() {
    // The reproducible Table I rows (geometry-faithful; see EXPERIMENTS.md
    // for the two deliberate deviations on BERT).
    let cases = [
        (ModelKind::ShuffleNet, ProfileSize::G1, 24),
        (ModelKind::MobileNet, ProfileSize::G2, 12),
        (ModelKind::MobileNet, ProfileSize::G3, 8),
        (ModelKind::ResNet50, ProfileSize::G1, 48),
        (ModelKind::ResNet50, ProfileSize::G3, 16),
        (ModelKind::ResNet50, ProfileSize::G7, 8),
        (ModelKind::BertBase, ProfileSize::G1, 42),
        (ModelKind::BertBase, ProfileSize::G7, 6),
        (ModelKind::Conformer, ProfileSize::G2, 24),
        (ModelKind::Conformer, ProfileSize::G7, 8),
    ];
    for (model, size, expected) in cases {
        let bed = Testbed::paper_default(model);
        let plan = bed.plan(DesignPoint::HomogeneousFifs(size)).unwrap();
        assert_eq!(
            plan.count(size),
            expected,
            "{model} homogeneous {size} instance count"
        );
    }
}

#[test]
fn gpu_max_is_never_the_smallest_partition_for_heavy_models() {
    let bed = Testbed::paper_default(ModelKind::BertBase);
    let (size, qps) = bed.gpu_max(&quick_sweep(&bed)).unwrap();
    assert!(qps > 0.0);
    assert!(
        size.gpcs() >= 3,
        "BERT's best homogeneous partition should be large, got {size}"
    );
}
