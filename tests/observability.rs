//! Observability-layer integration tests: invariant 12 (zero observer
//! effect), invariant 13 (online telemetry ≡ the `from_trace` oracle),
//! trace determinism across thread counts, and the flight recorder's
//! conservation / exact-breakdown guarantees.
//!
//! The property tests are the contract the whole `obs` crate hangs off:
//! attaching the recorder must leave the fault report **byte-identical**
//! (full `Debug` rendering) to the untraced run, and the live metric
//! registry must equal `MetricRegistry::from_trace` of the same run byte
//! for byte, for any router policy, sampled fault plan, sync-window mode
//! and lane thread count. The unit tests pin what the trace itself must
//! satisfy: offered = routed + shed, arrivals = completed, and per-class
//! latency components that sum to the measured end-to-end latency in
//! integer nanoseconds with no residual.

use paris_elsa::cluster::{Cluster, RouterPolicy, ShedPolicy, SyncWindow};
use paris_elsa::dnn::ModelKind;
use paris_elsa::faults::{
    run_with_faults_windowed, run_with_faults_windowed_instrumented,
    run_with_faults_windowed_traced, FaultPlan, FaultTopology,
};
use paris_elsa::obs::{
    alert_records, analyze, check_conservation, evaluate_slos, MetricRegistry, QueryTrace, SloSpec,
};
use paris_elsa::prelude::*;
use proptest::prelude::*;

fn mobilenet_table() -> ProfileTable {
    let perf = PerfModel::new(DeviceSpec::a100());
    ProfileTable::profile(&ModelKind::MobileNet.build(), &perf, &ProfileSize::ALL, 32)
}

/// A two-model shard on `gpus` GPUs, summary detail (the scenario-bench
/// configuration, scaled down).
fn shard(table: &ProfileTable, gpus: usize) -> MultiModelServer {
    let dist = BatchDistribution::paper_default();
    MultiModelServer::new(
        vec![
            ModelSpec::new("premium", table.clone(), dist.clone()),
            ModelSpec::new("batch", table.clone(), dist),
        ],
        GpcBudget::new(gpus * 7, gpus),
        MultiModelConfig::new().with_detail(ReportDetail::Summary),
    )
    .expect("shard plan builds")
}

/// Two 2-GPU shards with brownout shedding on both classes.
fn small_cluster(table: &ProfileTable, policy: RouterPolicy) -> Cluster {
    Cluster::new(vec![shard(table, 2), shard(table, 2)], policy)
        .with_shed(ShedPolicy::new(vec![0, 1]).with_margin(0.5))
}

/// Two equal-rate arrival streams (premium + batch) at `frac` of fleet
/// capacity combined, over `duration_s` simulated seconds.
fn arrivals(cluster: &Cluster, duration_s: f64, frac: f64, seed: u64) -> Vec<TaggedQuerySpec> {
    let dist = BatchDistribution::paper_default();
    let fleet: f64 = cluster
        .shards()
        .iter()
        .map(MultiModelServer::capacity_hint_qps)
        .sum();
    let per_model = 0.5 * frac * fleet;
    MultiTraceGenerator::new(
        vec![PhaseSpec::new(
            duration_s,
            vec![(per_model, dist.clone()), (per_model, dist)],
        )],
        seed,
    )
    .generate()
}

/// The unit suite's fixture: a mid-run rack outage on shard 0 under
/// moderate overload, traced at the given sync window and thread count.
fn traced_outage_run(
    table: &ProfileTable,
    window: SyncWindow,
    threads: usize,
) -> (paris_elsa::faults::FaultReport, QueryTrace) {
    let cluster = small_cluster(table, RouterPolicy::JoinShortestQueue);
    let trace_in = arrivals(&cluster, 1.0, 0.8, 7);
    let topology = FaultTopology::racks(&[2, 2], 2);
    let plan = FaultPlan::new().with_domain_outage(&topology, "rack0", 0.3, 0.7);
    run_with_faults_windowed_traced(
        &cluster,
        trace_in.iter().copied().map(|tq| (None, tq)),
        ReportDetail::Summary,
        &plan,
        window,
        threads,
    )
}

#[test]
fn flight_recorder_conserves_queries() {
    let table = mobilenet_table();
    let (report, trace) = traced_outage_run(&table, SyncWindow::PerEvent, 1);
    assert!(!trace.is_empty(), "outage run must record events");

    let stats = check_conservation(&trace).expect("per-query lifecycle balances");
    assert_eq!(stats.offered, stats.routed + stats.shed, "admission ledger");
    assert_eq!(stats.arrivals, stats.completed, "lifecycle conservation");
    assert!(stats.shed > 0, "the outage must brown out some batch load");
    assert_eq!(
        stats.completed,
        report.cluster.completed(),
        "trace-counted completions match the report"
    );
}

#[test]
fn breakdown_components_sum_exactly() {
    let table = mobilenet_table();
    let (_, trace) = traced_outage_run(&table, SyncWindow::PerEvent, 1);
    let analysis = analyze(&trace);
    assert_eq!(analysis.classes.len(), 2, "premium and batch rows");
    for class in &analysis.classes {
        assert!(
            class.completed > 0,
            "class {} completed nothing",
            class.group
        );
        assert_eq!(
            class.components_sum(),
            class.total_latency_ns as i128,
            "class {} breakdown must sum to end-to-end latency exactly",
            class.group
        );
    }
    let stats = check_conservation(&trace).expect("conserved");
    assert_eq!(
        analysis.classes.iter().map(|c| c.completed).sum::<u64>(),
        stats.completed,
        "per-class completions partition the total"
    );
}

#[test]
fn trace_is_thread_count_invariant() {
    let table = mobilenet_table();
    for window in [
        SyncWindow::PerEvent,
        SyncWindow::Lookahead(SimDuration::from_nanos(2_000_000)),
    ] {
        let (report1, trace1) = traced_outage_run(&table, window, 1);
        let (report4, trace4) = traced_outage_run(&table, window, 4);
        assert_eq!(
            format!("{report1:?}"),
            format!("{report4:?}"),
            "report diverged across thread counts ({window:?})"
        );
        assert_eq!(
            trace1, trace4,
            "trace diverged across thread counts ({window:?})"
        );
    }
}

#[test]
fn metric_registry_covers_the_run() {
    let table = mobilenet_table();
    let (_, trace) = traced_outage_run(&table, SyncWindow::PerEvent, 1);
    let window_ns = 100_000_000;
    let registry = MetricRegistry::from_trace(&trace, window_ns, &[14, 14]);
    for s in 0..2 {
        let busy = registry
            .get(&format!("shard{s}/busy_gpc_fraction"))
            .unwrap_or_else(|| panic!("shard{s} busy series"));
        assert!(!busy.values.is_empty());
        assert!(
            busy.values.iter().all(|v| (0.0..=1.0).contains(v)),
            "busy-GPC fraction is a fraction"
        );
        assert!(
            registry.get(&format!("shard{s}/outstanding")).is_some(),
            "shard{s} outstanding series"
        );
    }
    let shed = registry.get("fleet/shed_rate").expect("fleet shed series");
    assert!(
        shed.values.iter().any(|&v| v > 0.0),
        "the outage window must show sheds on the grid"
    );
}

/// Alert annotations live on their own lane and hit no registry fold:
/// stamping a fired alert log back onto the trace must reproduce the
/// exact same registry (so `trace_report --slo` can annotate freely).
#[test]
fn alert_annotations_are_registry_neutral() {
    let table = mobilenet_table();
    let (_, trace) = traced_outage_run(&table, SyncWindow::PerEvent, 1);
    let window_ns = 100_000_000;
    let registry = MetricRegistry::from_trace(&trace, window_ns, &[14, 14]);
    let specs = [
        SloSpec::new("premium-avail", 0, 0.9).with_windows(2, 6),
        SloSpec::new("batch-avail", 1, 0.5).with_windows(2, 6),
    ];
    let alerts = evaluate_slos(&registry, &specs);
    assert!(
        !alerts.is_empty(),
        "a rack outage under overload must burn an error budget"
    );
    let annotated = trace.annotated(alert_records(&alerts, window_ns).into_records());
    assert!(annotated.len() > trace.len(), "annotations were merged");
    let replayed = MetricRegistry::from_trace(&annotated, window_ns, &[14, 14]);
    assert_eq!(registry, replayed, "alert rows changed the registry");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Invariant 12 (ARCHITECTURE.md): attaching the flight recorder is a
    /// pure observation — for ANY router policy, fault plan, sync-window
    /// mode and lane thread count, the traced run's report is byte-identical
    /// (full `Debug` rendering) to the untraced run's, and the trace itself
    /// is identical across thread counts.
    #[test]
    fn tracing_is_zero_observer_effect(
        seed in 0u64..8,
        router in 0u64..3,
        fault_kind in 0u64..4,
        mode in 0u64..2,
        degrade_factor in 1.5f64..4.0,
    ) {
        let table = mobilenet_table();
        let policy = match router {
            0 => RouterPolicy::StaticHash,
            1 => RouterPolicy::JoinShortestQueue,
            _ => RouterPolicy::WeightedByCapacity,
        };
        let cluster = small_cluster(&table, policy);
        let trace_in = arrivals(&cluster, 0.4, 0.7, seed);
        let plan = match fault_kind {
            0 => FaultPlan::new(),
            1 => FaultPlan::new().with_gpu_degrade(1, 0, degrade_factor, 0.1, 0.3),
            2 => FaultPlan::new().with_domain_outage(
                &FaultTopology::racks(&[2, 2], 2),
                "rack0",
                0.1,
                0.3,
            ),
            _ => FaultPlan::sample_gpu_mttf(&[2, 2], 0.9, 0.2, 0.4, seed),
        };
        let window = if mode == 0 {
            SyncWindow::PerEvent
        } else {
            SyncWindow::Lookahead(SimDuration::from_nanos(2_000_000))
        };

        let mut traces: Vec<QueryTrace> = Vec::new();
        for threads in [1usize, 4] {
            let untraced = run_with_faults_windowed(
                &cluster,
                trace_in.iter().copied().map(|tq| (None, tq)),
                ReportDetail::Full,
                &plan,
                window,
                threads,
            );
            let (traced, trace) = run_with_faults_windowed_traced(
                &cluster,
                trace_in.iter().copied().map(|tq| (None, tq)),
                ReportDetail::Full,
                &plan,
                window,
                threads,
            );
            prop_assert_eq!(
                format!("{untraced:?}"),
                format!("{traced:?}"),
                "observer effect at {} threads ({:?})",
                threads,
                window
            );
            prop_assert!(!trace.is_empty(), "a loaded run must record events");
            traces.push(trace);
        }
        prop_assert!(
            traces[0] == traces[1],
            "trace diverged between 1 and 4 threads ({:?})",
            window
        );
    }

    /// Invariant 13 (ARCHITECTURE.md): the online telemetry plane — per-lane
    /// streaming aggregates merged in lane order, no trace retention — must
    /// equal `MetricRegistry::from_trace` of the same run **byte for byte**,
    /// for any router policy, fault plan, sync-window mode and thread count,
    /// and the registry itself must be identical across thread counts.
    #[test]
    fn online_registry_matches_from_trace_oracle(
        seed in 0u64..8,
        router in 0u64..3,
        fault_kind in 0u64..4,
        mode in 0u64..2,
    ) {
        let table = mobilenet_table();
        let policy = match router {
            0 => RouterPolicy::StaticHash,
            1 => RouterPolicy::JoinShortestQueue,
            _ => RouterPolicy::WeightedByCapacity,
        };
        let cluster = small_cluster(&table, policy);
        let trace_in = arrivals(&cluster, 0.4, 0.7, seed);
        let plan = match fault_kind {
            0 => FaultPlan::new(),
            1 => FaultPlan::new().with_gpu_degrade(1, 0, 2.5, 0.1, 0.3),
            2 => FaultPlan::new().with_domain_outage(
                &FaultTopology::racks(&[2, 2], 2),
                "rack0",
                0.1,
                0.3,
            ),
            _ => FaultPlan::sample_gpu_mttf(&[2, 2], 0.9, 0.2, 0.4, seed),
        };
        let window = if mode == 0 {
            SyncWindow::PerEvent
        } else {
            SyncWindow::Lookahead(SimDuration::from_nanos(2_000_000))
        };
        let window_ns = 50_000_000u64;

        let mut registries: Vec<MetricRegistry> = Vec::new();
        for threads in [1usize, 4] {
            let (_, trace, registry) = run_with_faults_windowed_instrumented(
                &cluster,
                trace_in.iter().copied().map(|tq| (None, tq)),
                ReportDetail::Summary,
                &plan,
                window,
                threads,
                window_ns,
            );
            let oracle = MetricRegistry::from_trace(&trace, window_ns, &[14, 14]);
            prop_assert_eq!(
                &registry,
                &oracle,
                "online registry diverged from the trace oracle at {} threads ({:?})",
                threads,
                window
            );
            registries.push(registry);
        }
        prop_assert_eq!(
            &registries[0],
            &registries[1],
            "online registry diverged between 1 and 4 threads ({:?})",
            window
        );
    }

    /// The SLO engine is a pure function of the registry, which is a pure
    /// function of the run: the alert log (fire bins, resolve bins, burn
    /// rates — full `Debug` rendering) must be identical across thread
    /// counts for any scenario.
    #[test]
    fn alert_log_is_thread_count_invariant(
        seed in 0u64..8,
        fault_kind in 0u64..3,
        mode in 0u64..2,
    ) {
        let table = mobilenet_table();
        let cluster = small_cluster(&table, RouterPolicy::JoinShortestQueue);
        let trace_in = arrivals(&cluster, 0.4, 0.8, seed);
        let plan = match fault_kind {
            0 => FaultPlan::new().with_domain_outage(
                &FaultTopology::racks(&[2, 2], 2),
                "rack0",
                0.1,
                0.3,
            ),
            1 => FaultPlan::new().with_gpu_degrade(0, 0, 3.0, 0.1, 0.3),
            _ => FaultPlan::sample_gpu_mttf(&[2, 2], 0.9, 0.2, 0.4, seed),
        };
        let window = if mode == 0 {
            SyncWindow::PerEvent
        } else {
            SyncWindow::Lookahead(SimDuration::from_nanos(2_000_000))
        };
        let specs = [
            SloSpec::new("premium-avail", 0, 0.9).with_windows(2, 6),
            SloSpec::new("batch-avail", 1, 0.5).with_windows(2, 6),
        ];
        let mut logs: Vec<String> = Vec::new();
        for threads in [1usize, 4] {
            let (_, registry) = paris_elsa::faults::run_with_faults_windowed_observed(
                &cluster,
                trace_in.iter().copied().map(|tq| (None, tq)),
                ReportDetail::Summary,
                &plan,
                window,
                threads,
                50_000_000,
            );
            logs.push(format!("{:?}", evaluate_slos(&registry, &specs)));
        }
        prop_assert_eq!(
            &logs[0],
            &logs[1],
            "alert log diverged between 1 and 4 threads ({:?})",
            window
        );
    }
}
